#include "adapt/resilience_controller.hpp"

#include <algorithm>

namespace bhss::adapt {

const char* to_string(LinkAdaptState s) noexcept {
  switch (s) {
    case LinkAdaptState::nominal: return "nominal";
    case LinkAdaptState::degraded: return "degraded";
    case LinkAdaptState::fallback: return "fallback";
    case LinkAdaptState::recovering: return "recovering";
  }
  return "unknown";
}

ResilienceController::ResilienceController(const AdaptConfig& config,
                                           std::vector<double> base_probs,
                                           std::size_t base_symbols_per_hop)
    : config_(config),
      detector_(config.detector, base_probs.size()),
      adapter_(config.adapter, std::move(base_probs)),
      base_symbols_per_hop_(base_symbols_per_hop) {
  BHSS_REQUIRE(base_symbols_per_hop_ >= 1, "ResilienceController: dwell must be >= 1 symbol");
  BHSS_REQUIRE(config_.min_symbols_per_hop >= 1 &&
                   config_.min_symbols_per_hop <= base_symbols_per_hop_,
               "ResilienceController: dwell floor must lie in [1, base dwell]");
  BHSS_REQUIRE(config_.fallback_windows >= 1,
               "ResilienceController: fallback debounce must be >= 1 window");
  BHSS_REQUIRE(config_.recovery_windows >= 1,
               "ResilienceController: recovery debounce must be >= 1 window");
  degraded_symbols_per_hop_ =
      std::max(base_symbols_per_hop_ >> config_.degraded_dwell_shift, config_.min_symbols_per_hop);
  plan_.probs = adapter_.base();
  plan_.symbols_per_hop = base_symbols_per_hop_;
  plan_.epoch = 0;
}

void ResilienceController::note_hop(std::size_t bw_index, bool filtered) noexcept {
  detector_.note_hop(bw_index, filtered);
}

void ResilienceController::publish_plan(const std::vector<double>& probs,
                                        std::size_t symbols_per_hop) {
  plan_.probs = probs;
  plan_.symbols_per_hop = symbols_per_hop;
  plan_.epoch = ++epoch_source_;
}

void ResilienceController::enter(LinkAdaptState next, std::size_t window_ordinal,
                                 const obs::LinkObs& o) {
  const LinkAdaptState from = state_;
  state_ = next;
  ++counters_.transitions;
  if (obs::counting(o.metrics)) {
    o.metrics->add(obs::link_ids().adapt_transitions);
    o.metrics->set(obs::link_ids().adapt_state, static_cast<double>(state_));
  }
  if (obs::tracing(o.trace)) {
    obs::TraceEvent ev;
    ev.type = obs::TraceEventType::adapt_transition;
    ev.flag = static_cast<std::uint8_t>(next);
    ev.hop = static_cast<std::uint32_t>(window_ordinal);
    ev.v0 = static_cast<double>(from);
    ev.v1 = static_cast<double>(plan_.symbols_per_hop);
    ev.v2 = static_cast<double>(plan_.epoch);
    o.trace->push(ev);
  }
}

void ResilienceController::on_packet(const PacketOutcome& outcome, const obs::LinkObs& o) {
  if (plan_.epoch != 0) {
    ++counters_.packets_adapted;
    if (obs::counting(o.metrics)) o.metrics->add(obs::link_ids().adapt_packets_adapted);
  }

  const WindowVerdict v = detector_.note_packet(outcome.delivered, outcome.sync_lost);
  if (!v.closed) return;

  if (v.jammed) ++counters_.windows_jammed;
  if (obs::counting(o.metrics)) {
    o.metrics->add(obs::link_ids().adapt_windows);
    if (v.jammed) o.metrics->add(obs::link_ids().adapt_windows_jammed);
  }
  if (obs::tracing(o.trace)) {
    obs::TraceEvent ev;
    ev.type = obs::TraceEventType::adapt_window;
    ev.flag = v.jammed ? 1 : 0;
    ev.hop = static_cast<std::uint32_t>(v.ordinal);
    ev.packet = outcome.packet;
    ev.v0 = v.bad_fraction;
    ev.v1 = detector_.config().bad_fraction;
    ev.v2 = static_cast<double>(v.bad);
    ev.v3 = static_cast<double>(v.streak);
    o.trace->push(ev);
  }

  switch (state_) {
    case LinkAdaptState::nominal:
      if (detector_.state() == JamState::jammed) {
        ++counters_.jam_episodes;
        degraded_jammed_windows_ = 0;
        adapter_.reweight(detector_.suspicion());
        publish_plan(adapter_.probs(), degraded_symbols_per_hop_);
        enter(LinkAdaptState::degraded, v.ordinal, o);
      }
      break;

    case LinkAdaptState::degraded:
      if (v.jammed) {
        ++degraded_jammed_windows_;
        if (degraded_jammed_windows_ >= config_.fallback_windows) {
          // Persistent jamming: bounded worst-case posture. The uniform
          // plan is a fixed point until the detector clears.
          ++counters_.fallbacks;
          fallback_clean_windows_ = 0;
          adapter_.fall_back_uniform();
          publish_plan(adapter_.probs(), config_.min_symbols_per_hop);
          enter(LinkAdaptState::fallback, v.ordinal, o);
        } else {
          // Track the adversary: suspicion has moved, so re-weight again.
          adapter_.reweight(detector_.suspicion());
          publish_plan(adapter_.probs(), degraded_symbols_per_hop_);
        }
      } else if (detector_.state() == JamState::clear) {
        publish_plan(adapter_.probs(), base_symbols_per_hop_);
        enter(LinkAdaptState::recovering, v.ordinal, o);
      }
      break;

    case LinkAdaptState::fallback:
      if (v.jammed) {
        fallback_clean_windows_ = 0;
      } else {
        ++fallback_clean_windows_;
        if (detector_.state() == JamState::clear &&
            fallback_clean_windows_ >= config_.recovery_windows) {
          publish_plan(adapter_.probs(), base_symbols_per_hop_);
          enter(LinkAdaptState::recovering, v.ordinal, o);
        }
      }
      break;

    case LinkAdaptState::recovering:
      if (detector_.state() == JamState::jammed) {
        ++counters_.jam_episodes;
        degraded_jammed_windows_ = 0;
        adapter_.reweight(detector_.suspicion());
        publish_plan(adapter_.probs(), degraded_symbols_per_hop_);
        enter(LinkAdaptState::degraded, v.ordinal, o);
      } else if (!v.jammed) {
        if (adapter_.recover_toward_base()) {
          ++counters_.recoveries;
          // Snapped exactly onto the base plan: epoch 0 means the shard
          // can drop its override and a recovered link is bit-identical
          // to one that was never jammed.
          plan_.probs = adapter_.base();
          plan_.symbols_per_hop = base_symbols_per_hop_;
          plan_.epoch = 0;
          enter(LinkAdaptState::nominal, v.ordinal, o);
        } else {
          publish_plan(adapter_.probs(), base_symbols_per_hop_);
        }
      }
      break;
  }

  detector_.decay_suspicion();
}

}  // namespace bhss::adapt
