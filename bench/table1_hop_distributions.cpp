// Table 1: the random distributions of the linear / exponential /
// parabolic hopping patterns over the seven paper bandwidths, plus the
// §6.4.1 average-bandwidth and average-throughput figures, plus our own
// Monte-Carlo re-derivation of the max-min-optimal ("parabolic") pattern.

#include <cstdio>

#include "bench_util.hpp"
#include "core/hop_pattern.hpp"
#include "core/pattern_optimizer.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "table1");
  bench::header("Table 1", "hop pattern distributions over the 7 paper bandwidths");

  const core::BandwidthSet bands = core::BandwidthSet::paper();

  std::printf("%-14s", "Bandwidth[MHz]");
  for (std::size_t i = 0; i < bands.size(); ++i) {
    std::printf("  %7.3f", bands.bandwidth_hz(i) / 1e6);
  }
  std::printf("\n");

  const struct {
    core::HopPatternType type;
    const char* paper_row;
  } rows[] = {
      {core::HopPatternType::linear, "14.3 x7"},
      {core::HopPatternType::exponential, "50.4 25.2 12.6 6.3 3.1 1.6 0.8"},
      {core::HopPatternType::parabolic, "27.1 15.8 6.3 0.1 1.3 22.0 27.4"},
  };

  for (const auto& row : rows) {
    const core::HopPattern p = core::HopPattern::make(row.type, bands);
    std::printf("%-14s", to_string(row.type).c_str());
    for (double prob : p.probabilities()) std::printf("  %6.1f%%", 100.0 * prob);
    std::printf("\n");
  }

  std::printf("\n# section 6.4.1 figures (paper values in parentheses):\n");
  const struct {
    core::HopPatternType type;
    double paper_bw_mhz;
    double paper_kbps;
  } figs[] = {
      {core::HopPatternType::linear, 2.83, 354.0},
      {core::HopPatternType::exponential, 6.72, 840.0},
      {core::HopPatternType::parabolic, 3.77, 471.0},
  };
  try {
    for (const auto& f : figs) {
      const bench::Stopwatch watch;
      const core::HopPattern p = core::HopPattern::make(f.type, bands);
      std::printf("#   %-12s avg bandwidth %.2f MHz (%.2f), avg throughput %.0f kb/s (%.0f)\n",
                  to_string(f.type).c_str(), p.average_bandwidth_hz() / 1e6, f.paper_bw_mhz,
                  p.average_throughput_bps() / 1e3, f.paper_kbps);
      const std::string point = std::string("avg_") + to_string(f.type);
      const std::uint64_t hash = bench::ParamsHash().add(to_string(f.type).c_str()).value();
      if (!campaign.replay_point(point, hash)) {
        campaign.emit(point, hash,
                      bench::JsonLine()
                          .add("figure", "table1")
                          .add("pattern", to_string(f.type).c_str())
                          .add("avg_bandwidth_mhz", p.average_bandwidth_hz() / 1e6)
                          .add("avg_throughput_kbps", p.average_throughput_bps() / 1e3),
                      watch.seconds());
      }
    }

    // Re-derive the parabolic distribution with our Monte-Carlo optimiser
    // over the analytical max-min power-advantage objective (§6.4.1).
    std::printf("\n# Monte-Carlo max-min optimisation (our re-derivation):\n");
    core::OptimizerConfig ocfg;
    const bench::Stopwatch watch;
    const core::HopPattern optimum = core::optimize_max_min_advantage(bands, ocfg);
    std::printf("%-14s", "optimised");
    for (double prob : optimum.probabilities()) std::printf("  %6.1f%%", 100.0 * prob);
    std::printf("\n");
    for (const auto& row : rows) {
      const core::HopPattern p = core::HopPattern::make(row.type, bands);
      std::printf("#   min advantage over all jammer bandwidths: %-12s %.2f dB\n",
                  to_string(row.type).c_str(),
                  core::min_advantage_db(p, ocfg.jammer_power, ocfg.noise_var));
    }
    const double opt_adv = core::min_advantage_db(optimum, ocfg.jammer_power, ocfg.noise_var);
    std::printf("#   min advantage over all jammer bandwidths: %-12s %.2f dB\n", "optimised",
                opt_adv);
    const std::uint64_t hash = bench::ParamsHash()
                                   .add("optimised")
                                   .add(ocfg.jammer_power)
                                   .add(ocfg.noise_var)
                                   .value();
    if (!campaign.replay_point("optimised", hash)) {
      campaign.emit("optimised", hash,
                    bench::JsonLine()
                        .add("figure", "table1")
                        .add("pattern", "optimised")
                        .add("min_advantage_db", opt_adv),
                    watch.seconds());
    }
  } catch (const runtime::CampaignInterrupted&) {
    return campaign.abandon_resumable();
  }
  return campaign.finish();
}
