#pragma once

/// @file bench_util.hpp
/// Shared helpers for the per-figure bench harnesses: command-line knobs
/// and table printing. Every sample-domain bench accepts
///   --packets=N   packets per data point (default: quick CI setting;
///                 the paper used 10 000)
///   --seed=N      channel seed

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bhss::bench {

struct Options {
  std::size_t packets = 12;
  std::uint64_t seed = 7;
  double jnr_db = 30.0;
};

inline Options parse_options(int argc, char** argv, std::size_t default_packets = 12) {
  Options opt;
  opt.packets = default_packets;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      opt.packets = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--jnr=", 6) == 0) {
      opt.jnr_db = std::strtod(argv[i] + 6, nullptr);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--packets=N] [--seed=N] [--jnr=dB]\n", argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

inline void header(const char* id, const char* what) {
  std::printf("# %s — %s\n", id, what);
}

}  // namespace bhss::bench
