#pragma once

/// @file bench_util.hpp
/// Shared helpers for the per-figure bench harnesses: command-line knobs,
/// table printing, wall-clock timing, machine-readable output and the
/// campaign checkpoint/resume plumbing. Every bench accepts
///   --packets=N        packets per data point (default: quick CI setting;
///                      the paper used 10 000)
///   --seed=N           channel seed
///   --jnr=dB           jammer-to-noise ratio
///   --threads=N        Monte-Carlo worker threads (default: hardware
///                      concurrency; determinism is per shard count, so
///                      this only changes wall time)
///   --shards=N         fixed Monte-Carlo shard count (part of the
///                      experiment identity — see ParallelLinkRunner)
///   --json=PATH        write one JSON object per data point to PATH
///                      (JSONL); wall-clock timings go to PATH.timing
///   --checkpoint=PATH  journal completed (data-point, shard) work units
///                      to PATH; SIGINT/SIGTERM drain gracefully and exit
///                      with status 75 (resumable)
///   --resume=PATH      replay the journal at PATH, re-run only missing
///                      units, keep checkpointing to the same file
///   --shard-timeout=S  per-shard watchdog budget in seconds (0 = off):
///                      overrunning shards are retried with backoff, then
///                      quarantined as `shard_timeout` in the taxonomy
///   --metrics=PATH     write per-point telemetry metrics (per-shard and
///                      merged counter/gauge/histogram records) to PATH
///                      (JSONL); merged stage timings go to PATH.timing
///   --trace=PATH       write per-hop trace events (hop decisions with the
///                      eq. (10) threshold terms, sync attempts/locks/
///                      losses, fault hits) to PATH (JSONL)
///
/// Distributed campaigns (src/runtime/distributed):
///   --supervise=N      fork/exec N worker incarnations of this binary
///                      (one per fleet slot), merge their journals and
///                      finish with a normal in-process publish pass.
///                      Requires --checkpoint/--resume. The published
///                      JSONL/metrics/trace bytes are identical to a
///                      single-process run
///   --worker-id=I      run as fleet worker I: simulate only the shards
///                      `shard % n_workers == I`, journal S/O records to
///                      the given --checkpoint path, publish nothing
///   --n-workers=N      fleet size the worker partitions against
///   --hang-timeout=S   supervisor: a worker whose journal stops growing
///                      for S seconds is SIGTERM'd, then SIGKILL'd (0=off)
///   --heartbeat=S      worker: append an `H` liveness record every S
///                      seconds while between shards (default 0.25)
///   --chaos-kill=W:K[,W:K...]
///                      supervisor: pass --chaos-kill-after-shards=K to
///                      worker W's FIRST incarnation (chaos testing)
///   --chaos-kill-after-shards=K
///                      worker: raise SIGKILL on itself after journaling
///                      K shards — a scripted crash with a durable journal
///
/// Every JSONL record is stamped with `schema_version` and the build's
/// git SHA, so journals merged from different binaries are detectable.
/// The --metrics/--trace streams contain no wall-clock fields, so they
/// inherit the campaign's resume guarantee: a killed-and-resumed run
/// publishes byte-identical telemetry JSONL (shard telemetry is journaled
/// as `O` records and replayed bit-exactly).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/link_simulator.hpp"
#include "runtime/campaign.hpp"
#include "runtime/distributed/journal_merge.hpp"
#include "runtime/distributed/supervisor.hpp"

namespace bhss::bench {

/// Version of the bench JSONL record layout. Bump when record fields
/// change meaning; consumers refuse to merge mixed-schema journals.
/// v3: checkpoint journals may carry telemetry (`O`) records, and the
/// --metrics/--trace JSONL streams exist.
/// v4: the canonical link schema gained the filter_cache_{hits,misses}
/// counters (excision design cache), so `O` records and --metrics lines
/// carry two more tokens/keys.
/// v5: closed-loop adaptation — `S` records grew six adapt_* taxonomy
/// fields (14 -> 20 tokens) and the link schema gained four adapt_*
/// counters, one adapt_state gauge and two trace event types.
/// v6: distributed fleets — `S` records grew the three worker_* taxonomy
/// fields (20 -> 23 tokens), journals may carry `H` heartbeat records,
/// and the journal write path fails hard (JournalWriteError) instead of
/// silently dropping appends.
inline constexpr std::size_t kSchemaVersion = 6;

/// Exit status of a gracefully drained (SIGINT/SIGTERM) checkpointed
/// campaign: the run is incomplete but everything finished is journaled —
/// rerun with --resume to continue. 75 = BSD EX_TEMPFAIL.
inline constexpr int kExitResumable = 75;

/// Short git SHA baked in at configure time (bench/CMakeLists.txt);
/// "unknown" outside a git checkout.
inline const char* build_git_sha() {
#ifdef BHSS_GIT_SHA
  return BHSS_GIT_SHA;
#else
  return "unknown";
#endif
}

struct Options {
  std::size_t packets = 12;
  std::uint64_t seed = 7;
  double jnr_db = 30.0;
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  std::size_t shards = 16;        ///< fixed shard count (experiment identity)
  std::string json_path;          ///< empty = JSON output disabled
  std::string checkpoint_path;    ///< empty = checkpointing disabled
  std::string resume_path;        ///< non-empty = resume this journal
  double shard_timeout_s = 0.0;   ///< watchdog budget per shard; 0 = off
  std::string metrics_path;       ///< empty = telemetry metrics disabled
  std::string trace_path;         ///< empty = trace events disabled

  // Distributed-campaign knobs (src/runtime/distributed).
  std::size_t supervise_workers = 0;  ///< --supervise=N; 0 = not supervising
  bool worker = false;                ///< --worker-id given: run one fleet slice
  std::size_t worker_id = 0;          ///< this worker's slot in [0, n_workers)
  std::size_t n_workers = 1;          ///< fleet size the partition divides by
  double hang_timeout_s = 0.0;        ///< supervisor journal-stall budget; 0 = off
  double heartbeat_s = 0.25;          ///< worker heartbeat period
  std::size_t chaos_kill_after_shards = 0;  ///< worker: SIGKILL self after K shards
  std::string chaos_kill_spec;        ///< supervisor: "W:K[,W:K...]"

  std::string argv0;  ///< this binary's path — the supervisor re-execs it
  /// Simulation-identity and runtime flags to forward verbatim to worker
  /// incarnations (--packets/--seed/--jnr/--threads/--shards/
  /// --shard-timeout/--heartbeat). Output and orchestration flags are
  /// deliberately NOT forwarded: workers never publish.
  std::vector<std::string> forward_args;

  /// True when any telemetry stream was requested.
  [[nodiscard]] bool telemetry_enabled() const noexcept {
    return !metrics_path.empty() || !trace_path.empty();
  }

  /// Journal path in effect (resume wins over checkpoint).
  [[nodiscard]] const std::string& journal_path() const noexcept {
    return resume_path.empty() ? checkpoint_path : resume_path;
  }

  /// Scripted chaos kill point for worker `w` out of --chaos-kill, or 0.
  [[nodiscard]] std::size_t chaos_kill_for(std::size_t w) const {
    const char* p = chaos_kill_spec.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      const std::size_t worker_tok = static_cast<std::size_t>(std::strtoull(p, &end, 10));
      if (end == p || *end != ':') break;
      p = end + 1;
      const std::size_t kill_after = static_cast<std::size_t>(std::strtoull(p, &end, 10));
      if (end == p) break;
      if (worker_tok == w) return kill_after;
      p = *end == ',' ? end + 1 : end;
    }
    return 0;
  }
};

inline Options parse_options(int argc, char** argv, std::size_t default_packets = 12,
                             double default_jnr_db = 30.0) {
  Options opt;
  opt.packets = default_packets;
  opt.jnr_db = default_jnr_db;
  opt.argv0 = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    bool forward = false;  // worker incarnations must see this flag verbatim
    if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      opt.packets = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
      forward = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      forward = true;
    } else if (std::strncmp(argv[i], "--jnr=", 6) == 0) {
      opt.jnr_db = std::strtod(argv[i] + 6, nullptr);
      forward = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opt.threads = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
      forward = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      opt.shards = static_cast<std::size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
      forward = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opt.json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      opt.checkpoint_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      opt.resume_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--shard-timeout=", 16) == 0) {
      opt.shard_timeout_s = std::strtod(argv[i] + 16, nullptr);
      forward = true;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      opt.metrics_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--supervise=", 12) == 0) {
      opt.supervise_workers =
          static_cast<std::size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
    } else if (std::strncmp(argv[i], "--worker-id=", 12) == 0) {
      opt.worker = true;
      opt.worker_id = static_cast<std::size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
    } else if (std::strncmp(argv[i], "--n-workers=", 12) == 0) {
      opt.n_workers = static_cast<std::size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
    } else if (std::strncmp(argv[i], "--hang-timeout=", 15) == 0) {
      opt.hang_timeout_s = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--heartbeat=", 12) == 0) {
      opt.heartbeat_s = std::strtod(argv[i] + 12, nullptr);
      forward = true;
    } else if (std::strncmp(argv[i], "--chaos-kill=", 13) == 0) {
      opt.chaos_kill_spec = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--chaos-kill-after-shards=", 26) == 0) {
      opt.chaos_kill_after_shards =
          static_cast<std::size_t>(std::strtoull(argv[i] + 26, nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--packets=N] [--seed=N] [--jnr=dB] [--threads=N] [--shards=N]\n"
                  "          [--json=PATH] [--checkpoint=PATH] [--resume=PATH]\n"
                  "          [--shard-timeout=S] [--metrics=PATH] [--trace=PATH]\n"
                  "          [--supervise=N] [--hang-timeout=S] [--chaos-kill=W:K,...]\n"
                  "          [--worker-id=I --n-workers=N] [--heartbeat=S]\n"
                  "          [--chaos-kill-after-shards=K]\n",
                  argv[0]);
      std::exit(0);
    }
    if (forward) opt.forward_args.emplace_back(argv[i]);
  }
  return opt;
}

inline void header(const char* id, const char* what) {
  std::printf("# %s — %s\n", id, what);
}

/// Wall-clock stopwatch for per-data-point timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One flat JSON object, built key by key. Keys are plain identifiers;
/// string values get minimal escaping (quote, backslash, control chars).
class JsonLine {
 public:
  JsonLine& add(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return raw(key, buf);
  }
  JsonLine& add(const char* key, std::size_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", value);
    return raw(key, buf);
  }
  JsonLine& add(const char* key, const char* value) {
    std::string quoted = "\"";
    for (const char* p = value; *p != '\0'; ++p) {
      const char c = *p;
      if (c == '"' || c == '\\') {
        quoted += '\\';
        quoted += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char esc[8];
        std::snprintf(esc, sizeof(esc), "\\u%04x", static_cast<unsigned>(c));
        quoted += esc;
      } else {
        quoted += c;
      }
    }
    quoted += '"';
    return raw(key, quoted.c_str());
  }

  /// Splice a pre-rendered `"key":value,...` fragment (the obs JSON body
  /// helpers) into the object verbatim. The fragment must be valid JSON
  /// object innards — this is the only way to carry arrays (histogram
  /// bins) through the flat builder.
  JsonLine& fragment(const std::string& body) {
    if (body.empty()) return *this;
    if (!body_.empty()) body_ += ",";
    body_ += body;
    return *this;
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonLine& raw(const char* key, const char* value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  std::string body_;
};

/// Append the schema/build provenance keys every published record carries.
inline JsonLine& stamp_record(JsonLine& line) {
  return line.add("schema_version", kSchemaVersion).add("git_sha", build_git_sha());
}

/// Delete a stale `<path>.tmp` left behind by a killed run (the staging
/// file of the atomic-rename publish below). Harmless when absent.
inline void remove_stale_tmp(const std::string& path) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  if (std::remove(tmp.c_str()) == 0) {
    std::fprintf(stderr, "bench: removed stale %s from an aborted run\n", tmp.c_str());
  }
}

/// Line-per-record JSON sink (JSONL). Disabled when the path is empty, so
/// benches can call `log.write(...)` unconditionally.
///
/// Records are written to `<path>.tmp` and renamed onto `<path>` when the
/// log is destroyed (normal bench completion). An aborted run therefore
/// leaves only the .tmp file behind (cleaned up at the next bench start):
/// the published path never holds a truncated half-written log that a
/// downstream consumer would misread as a complete sweep.
class JsonLog {
 public:
  JsonLog() = default;
  explicit JsonLog(const std::string& path) { open(path); }
  ~JsonLog() { publish(); }
  JsonLog(const JsonLog&) = delete;
  JsonLog& operator=(const JsonLog&) = delete;

  void open(const std::string& path) {
    if (path.empty()) return;
    remove_stale_tmp(path);
    path_ = path;
    tmp_path_ = path + ".tmp";
    file_ = std::fopen(tmp_path_.c_str(), "w");
    if (file_ == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", tmp_path_.c_str());
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }

  /// Stamp provenance keys and append the record.
  void write(JsonLine line) {
    if (file_ == nullptr) return;
    write_raw(stamp_record(line).str());
  }

  /// Append an already-final record verbatim (journal replays: the bytes
  /// must match what the original run published).
  void write_raw(const std::string& record) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n", record.c_str());
    std::fflush(file_);
  }

  /// Close WITHOUT publishing: the staged .tmp stays on disk for the next
  /// run's stale-tmp cleanup. Used when a campaign drains mid-sweep — an
  /// incomplete JSONL must never land on the published path.
  void abandon() {
    if (file_ == nullptr) return;
    std::fclose(file_);
    file_ = nullptr;
  }

 private:
  void publish() {
    if (file_ == nullptr) return;
    std::fclose(file_);
    file_ = nullptr;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::fprintf(stderr, "bench: cannot publish %s to %s\n", tmp_path_.c_str(),
                   path_.c_str());
    }
  }

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
};

/// Tiny FNV-1a fingerprint for analytic data points (model parameters,
/// loop indices) — the analytic benches' analogue of
/// CampaignRunner::params_hash. Floats hash as IEEE-754 bit patterns.
class ParamsHash {
 public:
  ParamsHash& add(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  ParamsHash& add(double v) noexcept {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
  }
  ParamsHash& add(const char* s) noexcept {
    for (; *s != '\0'; ++s) byte(static_cast<std::uint8_t>(*s));
    byte(0);
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= 0x100000001B3ULL;
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// One checkpointable bench run: owns the JSONL sink, the timing sidecar,
/// the checkpoint journal and the campaign runner, and wires the
/// command-line Options through all of them.
///
/// Two kinds of data point:
///  - Monte-Carlo points go through run_point()/min_snr_for_per(), which
///    checkpoint at (point, shard) granularity and merge bit-identically
///    across kills and resumes.
///  - Analytic points (closed-form model evaluations) use
///    replay_point()/emit(): the published record itself is the journaled
///    unit, replayed byte-for-byte on resume.
///
/// Timings are deliberately kept OUT of the published JSONL (they go to
/// `<json>.timing`): every published field is a pure function of the
/// configuration, which is what makes "resumed output is bit-identical to
/// an uninterrupted run" a testable guarantee rather than a hope.
class Campaign {
 public:
  Campaign(const Options& opt, const char* figure_id)
      : figure_(figure_id), worker_mode_(opt.worker) {
    const std::string& journal_path = opt.journal_path();
    if (opt.supervise_workers > 0) {
      if (journal_path.empty() || opt.worker) {
        std::fprintf(stderr,
                     "%s: --supervise requires --checkpoint/--resume and excludes "
                     "--worker-id\n",
                     figure_.c_str());
        std::exit(2);
      }
      runtime::CampaignRunner::install_signal_handlers();
      supervise_fleet(opt, journal_path);  // exits kExitResumable on drain
    }
    if (worker_mode_ &&
        (journal_path.empty() || opt.n_workers < 1 || opt.worker_id >= opt.n_workers)) {
      std::fprintf(stderr,
                   "%s: worker mode requires --checkpoint/--resume and "
                   "--worker-id < --n-workers\n",
                   figure_.c_str());
      std::exit(2);
    }
    if (!journal_path.empty()) {
      remove_stale_tmp(journal_path);
      journal_.open(journal_path, figure_, static_cast<int>(kSchemaVersion), build_git_sha(),
                    /*resume=*/!opt.resume_path.empty() || supervised_);
      runtime::CampaignRunner::install_signal_handlers();
      if (journal_.replayed_records() > 0) {
        std::fprintf(stderr, "%s: resuming from %s (%zu journaled units%s)\n",
                     figure_.c_str(), journal_path.c_str(), journal_.replayed_records(),
                     journal_.tail_truncated() ? ", torn tail dropped" : "");
      }
    }
    runtime::distributed::ShardPartition partition;
    if (worker_mode_) partition = {opt.worker_id, opt.n_workers};
    runner_.emplace(
        runtime::CampaignOptions{.n_threads = opt.threads,
                                 .n_shards = opt.shards,
                                 .shard_timeout_s = opt.shard_timeout_s,
                                 .partition = partition},
        journal_.is_open() ? &journal_ : nullptr);

    if (worker_mode_) {
      // Workers never publish — they exist to journal S/O records for the
      // supervisor's merge. Telemetry is ALWAYS collected (collect-only
      // sink) so every journaled shard carries its O record: the final
      // pass can then honor --metrics/--trace without re-running shards.
      if (!opt.json_path.empty() || opt.telemetry_enabled()) {
        std::fprintf(stderr, "%s: worker %zu ignores --json/--metrics/--trace\n",
                     figure_.c_str(), opt.worker_id);
      }
      runner_->telemetry_sink = [](const std::string&, const core::SimConfig&,
                                   const core::LinkStats&,
                                   const std::vector<obs::ShardTelemetry>&) {};
      if (opt.chaos_kill_after_shards > 0) {
        runner_->shard_journaled_hook = [this,
                                         kill_after = opt.chaos_kill_after_shards](
                                            std::size_t) {
          if (chaos_journaled_.fetch_add(1, std::memory_order_relaxed) + 1 >= kill_after) {
            std::raise(SIGKILL);  // scripted crash: the journal is already durable
          }
        };
      }
      if (opt.heartbeat_s > 0.0) start_heartbeat(opt.worker_id, opt.heartbeat_s);
      return;
    }

    log_.open(opt.json_path);
    if (!opt.json_path.empty()) timing_.open(opt.json_path + ".timing");

    if (opt.telemetry_enabled()) {
      metrics_log_.open(opt.metrics_path);
      trace_log_.open(opt.trace_path);
      if (!opt.metrics_path.empty()) obs_timing_.open(opt.metrics_path + ".timing");
      runner_->telemetry_sink = [this](const std::string& point_id,
                                       const core::SimConfig& /*cfg*/,
                                       const core::LinkStats& /*merged*/,
                                       const std::vector<obs::ShardTelemetry>& shards) {
        emit_telemetry(point_id, shards);
      };
    }
  }

  ~Campaign() { stop_heartbeat(); }

  [[nodiscard]] runtime::CampaignRunner& runner() noexcept { return *runner_; }
  [[nodiscard]] std::size_t threads() const noexcept { return runner_->threads(); }
  [[nodiscard]] std::size_t shards() const noexcept { return runner_->shards(); }
  [[nodiscard]] bool json_enabled() const noexcept { return log_.enabled(); }

  /// Monte-Carlo data point (see CampaignRunner::run_point).
  [[nodiscard]] core::LinkStats run_point(const std::string& point_id,
                                          const core::SimConfig& cfg) {
    return runner_->run_point(point_id, cfg);
  }

  /// Checkpointed §6.3 bisection (see CampaignRunner::min_snr_for_per).
  /// A fleet worker skips bisections entirely (returns 0): partial-shard
  /// PER would steer each worker down a different probe path, journaling
  /// unmergeable same-point records. The supervisor's final pass computes
  /// them in-process — distributed campaigns parallelize the run_point
  /// sweeps, not the bisection probes.
  [[nodiscard]] double min_snr_for_per(const std::string& point_id,
                                       const core::SimConfig& cfg,
                                       double target_per = 0.5) {
    if (worker_mode_) return 0.0;
    return runner_->min_snr_for_per(point_id, cfg, target_per);
  }

  /// Analytic point: when `point_id` is journaled under `params_hash`,
  /// republish the stored record verbatim and return true (caller skips
  /// the computation). Checks for a drain request at the point boundary.
  [[nodiscard]] bool replay_point(const std::string& point_id, std::uint64_t params_hash) {
    if (runtime::CampaignRunner::interrupt_requested()) {
      journal_.flush();
      throw runtime::CampaignInterrupted();
    }
    if (!journal_.is_open()) return false;
    if (const std::string* record = journal_.find_point({point_id, params_hash})) {
      log_.write_raw(*record);
      return true;
    }
    return false;
  }

  /// Publish one data-point record: stamp provenance, append to the
  /// JSONL log, journal it (so resume republishes these exact bytes) and
  /// log the wall time to the timing sidecar. A fleet worker publishes
  /// nothing — not even `P` records: the canonical publish happens in the
  /// supervisor's final pass, and a worker-written `P` would carry stats
  /// merged from a partial shard slice.
  void emit(const std::string& point_id, std::uint64_t params_hash, JsonLine line,
            double wall_s) {
    if (worker_mode_) return;
    const std::string record = stamp_record(line).str();
    log_.write_raw(record);
    if (journal_.is_open()) journal_.record_point({point_id, params_hash}, record);
    if (timing_.enabled()) {
      JsonLine timing;
      timing.add("point", point_id.c_str()).add("wall_s", wall_s);
      timing_.write_raw(timing.str());
    }
  }

  /// Normal completion: publishes the JSONL atomically (via destructors).
  int finish(int status = 0) { return status; }

  /// Graceful-drain completion: abandon the half-written logs (their .tmp
  /// stays for the next run's cleanup), flush the journal, tell the user
  /// how to resume, and return the distinct resumable status.
  int abandon_resumable() {
    log_.abandon();
    timing_.abandon();
    metrics_log_.abandon();
    trace_log_.abandon();
    obs_timing_.abandon();
    journal_.flush();
    std::fprintf(stderr, "%s: interrupted — journal flushed; rerun with --resume=%s\n",
                 figure_.c_str(), journal_.path().c_str());
    return kExitResumable;
  }

 private:
  /// Fork/exec the worker fleet, supervise it to completion, fold the
  /// worker journals into the campaign journal and fall through to the
  /// normal (single-process) publish path. Exits kExitResumable when the
  /// fleet drained on SIGINT/SIGTERM. See supervisor.hpp for semantics.
  void supervise_fleet(const Options& opt, const std::string& journal_path) {
    namespace dist = runtime::distributed;
    dist::SupervisorOptions sup;
    sup.n_workers = opt.supervise_workers;
    sup.journal_base = journal_path;
    sup.hang_timeout_s = opt.hang_timeout_s;
    dist::CampaignSupervisor supervisor(
        sup, [&opt, &journal_path](std::size_t worker, bool resume) {
          std::vector<std::string> argv{opt.argv0};
          argv.insert(argv.end(), opt.forward_args.begin(), opt.forward_args.end());
          argv.push_back("--worker-id=" + std::to_string(worker));
          argv.push_back("--n-workers=" + std::to_string(opt.supervise_workers));
          const std::string worker_journal =
              dist::CampaignSupervisor::worker_journal_path(journal_path, worker);
          argv.push_back((resume ? "--resume=" : "--checkpoint=") + worker_journal);
          if (!resume) {
            // Chaos injection arms the FIRST incarnation only: the whole
            // point is that the respawn resumes cleanly past the kill.
            const std::size_t kill_after = opt.chaos_kill_for(worker);
            if (kill_after > 0) {
              argv.push_back("--chaos-kill-after-shards=" + std::to_string(kill_after));
            }
          }
          return argv;
        });
    std::fprintf(stderr, "%s: supervising %zu workers (journals %s.w*)\n", figure_.c_str(),
                 sup.n_workers, journal_path.c_str());
    const dist::FleetResult fleet = supervisor.run();

    // Fleet accounting goes through the obs fleet registry — a separate
    // schema from the link telemetry, because these counters describe the
    // orchestration, not the experiment, and must never perturb the
    // published streams.
    obs::MetricsShard counters(&obs::fleet_registry());
    const obs::FleetIds& ids = obs::fleet_ids();
    counters.add(ids.worker_restarts, fleet.fleet.worker_restarts);
    counters.add(ids.worker_crashes, fleet.fleet.worker_crashes);
    counters.add(ids.worker_drains, fleet.fleet.worker_drains);
    counters.add(ids.workers_failed, fleet.failed_workers.size());
    for (const std::size_t failed : fleet.failed_workers) {
      const dist::ShardPartition slice{failed, opt.supervise_workers};
      counters.add(ids.shards_quarantined, slice.owned_count(opt.shards));
    }
    std::fprintf(stderr, "%s: fleet {%s}\n", figure_.c_str(),
                 obs::metrics_json_body(counters).c_str());

    if (fleet.drained) {
      std::fprintf(stderr,
                   "%s: fleet drained — rerun with --supervise=%zu --resume=%s to "
                   "continue\n",
                   figure_.c_str(), opt.supervise_workers, journal_path.c_str());
      std::exit(kExitResumable);
    }

    std::vector<std::string> inputs;
    for (const std::string& worker_journal : fleet.worker_journals) {
      if (std::FILE* probe = std::fopen(worker_journal.c_str(), "rb")) {
        std::fclose(probe);
        inputs.push_back(worker_journal);
      }
    }
    std::string base;
    if (std::FILE* probe = std::fopen(journal_path.c_str(), "rb")) {
      std::fclose(probe);
      base = journal_path;  // previous supervised/partial run: fold it in
    }
    try {
      const dist::MergeReport report = dist::merge_journals(inputs, journal_path, base);
      std::fprintf(stderr,
                   "%s: merged %zu journals -> %s (%zu shard records, %zu telemetry, "
                   "%zu duplicates folded, %zu torn tails recovered)\n",
                   figure_.c_str(), report.inputs, journal_path.c_str(),
                   report.shard_records, report.obs_records, report.duplicates_folded,
                   report.torn_tails);
    } catch (const dist::JournalMergeError& e) {
      std::fprintf(stderr, "%s: %s\n", figure_.c_str(), e.what());
      std::exit(1);
    }
    supervised_ = true;  // the constructor now resumes from the merged journal
  }

  /// Worker liveness: append an `H` record every `period_s` so the
  /// supervisor can tell "slow shard" from "hung worker" even when no
  /// shard completes for a while.
  void start_heartbeat(std::size_t worker_id, double period_s) {
    heartbeat_ = std::thread([this, worker_id, period_s] {
      std::size_t sequence = 0;
      auto next = std::chrono::steady_clock::now();
      while (!heartbeat_stop_.load(std::memory_order_relaxed)) {
        next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(period_s));
        while (!heartbeat_stop_.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (heartbeat_stop_.load(std::memory_order_relaxed)) return;
        try {
          journal_.record_heartbeat(worker_id, sequence++);
        } catch (const runtime::JournalWriteError&) {
          return;  // the next shard append will surface the failure
        }
      }
    });
  }

  void stop_heartbeat() {
    if (heartbeat_.joinable()) {
      heartbeat_stop_.store(true, std::memory_order_relaxed);
      heartbeat_.join();
    }
  }

  /// Telemetry emitter, invoked by the campaign runner after every
  /// point's merge (including points replayed wholly from the journal).
  /// Record order is deterministic: per-shard metrics in ascending shard
  /// order, then the merged metrics record; trace events in (point,
  /// shard, event) order with one drop-accounting record per shard that
  /// overflowed its ring. Stage timings are wall-clock and go to the
  /// `.timing` sidecar, never the published streams.
  void emit_telemetry(const std::string& point_id,
                      const std::vector<obs::ShardTelemetry>& shards) {
    if (metrics_log_.enabled()) {
      for (std::size_t i = 0; i < shards.size(); ++i) {
        JsonLine line;
        line.add("point", point_id.c_str()).add("shard", i);
        line.fragment(obs::metrics_json_body(shards[i].metrics));
        metrics_log_.write(std::move(line));
      }
      const obs::ShardTelemetry merged = obs::merge_telemetry(shards, shards.size());
      JsonLine line;
      line.add("point", point_id.c_str()).add("shard", "merged");
      line.fragment(obs::metrics_json_body(merged.metrics));
      metrics_log_.write(std::move(line));
      if (obs_timing_.enabled()) {
        JsonLine timing;
        timing.add("point", point_id.c_str());
        timing.fragment(obs::scope_stats_json_body(merged.trace));
        obs_timing_.write_raw(timing.str());
      }
    }
    if (trace_log_.enabled()) {
      for (std::size_t i = 0; i < shards.size(); ++i) {
        const obs::TraceSink& sink = shards[i].trace;
        std::size_t seq = 0;
        for (const obs::TraceEvent& ev : sink.events()) {
          JsonLine line;
          line.add("point", point_id.c_str()).add("shard", i).add("seq", seq++);
          line.fragment(obs::trace_event_json_body(ev));
          trace_log_.write(std::move(line));
        }
        if (sink.dropped() > 0) {
          JsonLine line;
          line.add("point", point_id.c_str()).add("shard", i);
          line.add("event", "ring_overflow")
              .add("dropped", sink.dropped())
              .add("total_recorded", sink.total_recorded());
          trace_log_.write(std::move(line));
        }
      }
    }
  }

  std::string figure_;
  bool worker_mode_ = false;
  bool supervised_ = false;
  runtime::CheckpointJournal journal_;
  std::optional<runtime::CampaignRunner> runner_;
  JsonLog log_;
  JsonLog timing_;
  JsonLog metrics_log_;
  JsonLog trace_log_;
  JsonLog obs_timing_;
  std::thread heartbeat_;
  std::atomic<bool> heartbeat_stop_{false};
  std::atomic<std::size_t> chaos_journaled_{0};
};

}  // namespace bhss::bench
