#pragma once

/// @file bench_util.hpp
/// Shared helpers for the per-figure bench harnesses: command-line knobs,
/// table printing, wall-clock timing, machine-readable output and the
/// campaign checkpoint/resume plumbing. Every bench accepts
///   --packets=N        packets per data point (default: quick CI setting;
///                      the paper used 10 000)
///   --seed=N           channel seed
///   --jnr=dB           jammer-to-noise ratio
///   --threads=N        Monte-Carlo worker threads (default: hardware
///                      concurrency; determinism is per shard count, so
///                      this only changes wall time)
///   --shards=N         fixed Monte-Carlo shard count (part of the
///                      experiment identity — see ParallelLinkRunner)
///   --json=PATH        write one JSON object per data point to PATH
///                      (JSONL); wall-clock timings go to PATH.timing
///   --checkpoint=PATH  journal completed (data-point, shard) work units
///                      to PATH; SIGINT/SIGTERM drain gracefully and exit
///                      with status 75 (resumable)
///   --resume=PATH      replay the journal at PATH, re-run only missing
///                      units, keep checkpointing to the same file
///   --shard-timeout=S  per-shard watchdog budget in seconds (0 = off):
///                      overrunning shards are retried with backoff, then
///                      quarantined as `shard_timeout` in the taxonomy
///   --metrics=PATH     write per-point telemetry metrics (per-shard and
///                      merged counter/gauge/histogram records) to PATH
///                      (JSONL); merged stage timings go to PATH.timing
///   --trace=PATH       write per-hop trace events (hop decisions with the
///                      eq. (10) threshold terms, sync attempts/locks/
///                      losses, fault hits) to PATH (JSONL)
///
/// Every JSONL record is stamped with `schema_version` and the build's
/// git SHA, so journals merged from different binaries are detectable.
/// The --metrics/--trace streams contain no wall-clock fields, so they
/// inherit the campaign's resume guarantee: a killed-and-resumed run
/// publishes byte-identical telemetry JSONL (shard telemetry is journaled
/// as `O` records and replayed bit-exactly).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/link_simulator.hpp"
#include "runtime/campaign.hpp"

namespace bhss::bench {

/// Version of the bench JSONL record layout. Bump when record fields
/// change meaning; consumers refuse to merge mixed-schema journals.
/// v3: checkpoint journals may carry telemetry (`O`) records, and the
/// --metrics/--trace JSONL streams exist.
/// v4: the canonical link schema gained the filter_cache_{hits,misses}
/// counters (excision design cache), so `O` records and --metrics lines
/// carry two more tokens/keys.
/// v5: closed-loop adaptation — `S` records grew six adapt_* taxonomy
/// fields (14 -> 20 tokens) and the link schema gained four adapt_*
/// counters, one adapt_state gauge and two trace event types.
inline constexpr std::size_t kSchemaVersion = 5;

/// Exit status of a gracefully drained (SIGINT/SIGTERM) checkpointed
/// campaign: the run is incomplete but everything finished is journaled —
/// rerun with --resume to continue. 75 = BSD EX_TEMPFAIL.
inline constexpr int kExitResumable = 75;

/// Short git SHA baked in at configure time (bench/CMakeLists.txt);
/// "unknown" outside a git checkout.
inline const char* build_git_sha() {
#ifdef BHSS_GIT_SHA
  return BHSS_GIT_SHA;
#else
  return "unknown";
#endif
}

struct Options {
  std::size_t packets = 12;
  std::uint64_t seed = 7;
  double jnr_db = 30.0;
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  std::size_t shards = 16;        ///< fixed shard count (experiment identity)
  std::string json_path;          ///< empty = JSON output disabled
  std::string checkpoint_path;    ///< empty = checkpointing disabled
  std::string resume_path;        ///< non-empty = resume this journal
  double shard_timeout_s = 0.0;   ///< watchdog budget per shard; 0 = off
  std::string metrics_path;       ///< empty = telemetry metrics disabled
  std::string trace_path;         ///< empty = trace events disabled

  /// True when any telemetry stream was requested.
  [[nodiscard]] bool telemetry_enabled() const noexcept {
    return !metrics_path.empty() || !trace_path.empty();
  }

  /// Journal path in effect (resume wins over checkpoint).
  [[nodiscard]] const std::string& journal_path() const noexcept {
    return resume_path.empty() ? checkpoint_path : resume_path;
  }
};

inline Options parse_options(int argc, char** argv, std::size_t default_packets = 12,
                             double default_jnr_db = 30.0) {
  Options opt;
  opt.packets = default_packets;
  opt.jnr_db = default_jnr_db;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      opt.packets = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--jnr=", 6) == 0) {
      opt.jnr_db = std::strtod(argv[i] + 6, nullptr);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opt.threads = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      opt.shards = static_cast<std::size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opt.json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      opt.checkpoint_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      opt.resume_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--shard-timeout=", 16) == 0) {
      opt.shard_timeout_s = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      opt.metrics_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--packets=N] [--seed=N] [--jnr=dB] [--threads=N] [--shards=N]\n"
                  "          [--json=PATH] [--checkpoint=PATH] [--resume=PATH]\n"
                  "          [--shard-timeout=S] [--metrics=PATH] [--trace=PATH]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

inline void header(const char* id, const char* what) {
  std::printf("# %s — %s\n", id, what);
}

/// Wall-clock stopwatch for per-data-point timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One flat JSON object, built key by key. Keys are plain identifiers;
/// string values get minimal escaping (quote, backslash, control chars).
class JsonLine {
 public:
  JsonLine& add(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return raw(key, buf);
  }
  JsonLine& add(const char* key, std::size_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", value);
    return raw(key, buf);
  }
  JsonLine& add(const char* key, const char* value) {
    std::string quoted = "\"";
    for (const char* p = value; *p != '\0'; ++p) {
      const char c = *p;
      if (c == '"' || c == '\\') {
        quoted += '\\';
        quoted += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char esc[8];
        std::snprintf(esc, sizeof(esc), "\\u%04x", static_cast<unsigned>(c));
        quoted += esc;
      } else {
        quoted += c;
      }
    }
    quoted += '"';
    return raw(key, quoted.c_str());
  }

  /// Splice a pre-rendered `"key":value,...` fragment (the obs JSON body
  /// helpers) into the object verbatim. The fragment must be valid JSON
  /// object innards — this is the only way to carry arrays (histogram
  /// bins) through the flat builder.
  JsonLine& fragment(const std::string& body) {
    if (body.empty()) return *this;
    if (!body_.empty()) body_ += ",";
    body_ += body;
    return *this;
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonLine& raw(const char* key, const char* value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  std::string body_;
};

/// Append the schema/build provenance keys every published record carries.
inline JsonLine& stamp_record(JsonLine& line) {
  return line.add("schema_version", kSchemaVersion).add("git_sha", build_git_sha());
}

/// Delete a stale `<path>.tmp` left behind by a killed run (the staging
/// file of the atomic-rename publish below). Harmless when absent.
inline void remove_stale_tmp(const std::string& path) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  if (std::remove(tmp.c_str()) == 0) {
    std::fprintf(stderr, "bench: removed stale %s from an aborted run\n", tmp.c_str());
  }
}

/// Line-per-record JSON sink (JSONL). Disabled when the path is empty, so
/// benches can call `log.write(...)` unconditionally.
///
/// Records are written to `<path>.tmp` and renamed onto `<path>` when the
/// log is destroyed (normal bench completion). An aborted run therefore
/// leaves only the .tmp file behind (cleaned up at the next bench start):
/// the published path never holds a truncated half-written log that a
/// downstream consumer would misread as a complete sweep.
class JsonLog {
 public:
  JsonLog() = default;
  explicit JsonLog(const std::string& path) { open(path); }
  ~JsonLog() { publish(); }
  JsonLog(const JsonLog&) = delete;
  JsonLog& operator=(const JsonLog&) = delete;

  void open(const std::string& path) {
    if (path.empty()) return;
    remove_stale_tmp(path);
    path_ = path;
    tmp_path_ = path + ".tmp";
    file_ = std::fopen(tmp_path_.c_str(), "w");
    if (file_ == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", tmp_path_.c_str());
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }

  /// Stamp provenance keys and append the record.
  void write(JsonLine line) {
    if (file_ == nullptr) return;
    write_raw(stamp_record(line).str());
  }

  /// Append an already-final record verbatim (journal replays: the bytes
  /// must match what the original run published).
  void write_raw(const std::string& record) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n", record.c_str());
    std::fflush(file_);
  }

  /// Close WITHOUT publishing: the staged .tmp stays on disk for the next
  /// run's stale-tmp cleanup. Used when a campaign drains mid-sweep — an
  /// incomplete JSONL must never land on the published path.
  void abandon() {
    if (file_ == nullptr) return;
    std::fclose(file_);
    file_ = nullptr;
  }

 private:
  void publish() {
    if (file_ == nullptr) return;
    std::fclose(file_);
    file_ = nullptr;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::fprintf(stderr, "bench: cannot publish %s to %s\n", tmp_path_.c_str(),
                   path_.c_str());
    }
  }

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
};

/// Tiny FNV-1a fingerprint for analytic data points (model parameters,
/// loop indices) — the analytic benches' analogue of
/// CampaignRunner::params_hash. Floats hash as IEEE-754 bit patterns.
class ParamsHash {
 public:
  ParamsHash& add(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  ParamsHash& add(double v) noexcept {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
  }
  ParamsHash& add(const char* s) noexcept {
    for (; *s != '\0'; ++s) byte(static_cast<std::uint8_t>(*s));
    byte(0);
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= 0x100000001B3ULL;
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// One checkpointable bench run: owns the JSONL sink, the timing sidecar,
/// the checkpoint journal and the campaign runner, and wires the
/// command-line Options through all of them.
///
/// Two kinds of data point:
///  - Monte-Carlo points go through run_point()/min_snr_for_per(), which
///    checkpoint at (point, shard) granularity and merge bit-identically
///    across kills and resumes.
///  - Analytic points (closed-form model evaluations) use
///    replay_point()/emit(): the published record itself is the journaled
///    unit, replayed byte-for-byte on resume.
///
/// Timings are deliberately kept OUT of the published JSONL (they go to
/// `<json>.timing`): every published field is a pure function of the
/// configuration, which is what makes "resumed output is bit-identical to
/// an uninterrupted run" a testable guarantee rather than a hope.
class Campaign {
 public:
  Campaign(const Options& opt, const char* figure_id) : figure_(figure_id) {
    const std::string& journal_path = opt.journal_path();
    if (!journal_path.empty()) {
      remove_stale_tmp(journal_path);
      journal_.open(journal_path, figure_, static_cast<int>(kSchemaVersion), build_git_sha(),
                    /*resume=*/!opt.resume_path.empty());
      runtime::CampaignRunner::install_signal_handlers();
      if (journal_.replayed_records() > 0) {
        std::fprintf(stderr, "%s: resuming from %s (%zu journaled units%s)\n",
                     figure_.c_str(), journal_path.c_str(), journal_.replayed_records(),
                     journal_.tail_truncated() ? ", torn tail dropped" : "");
      }
    }
    runner_.emplace(
        runtime::CampaignOptions{.n_threads = opt.threads,
                                 .n_shards = opt.shards,
                                 .shard_timeout_s = opt.shard_timeout_s},
        journal_.is_open() ? &journal_ : nullptr);
    log_.open(opt.json_path);
    if (!opt.json_path.empty()) timing_.open(opt.json_path + ".timing");

    if (opt.telemetry_enabled()) {
      metrics_log_.open(opt.metrics_path);
      trace_log_.open(opt.trace_path);
      if (!opt.metrics_path.empty()) obs_timing_.open(opt.metrics_path + ".timing");
      runner_->telemetry_sink = [this](const std::string& point_id,
                                       const core::SimConfig& /*cfg*/,
                                       const core::LinkStats& /*merged*/,
                                       const std::vector<obs::ShardTelemetry>& shards) {
        emit_telemetry(point_id, shards);
      };
    }
  }

  [[nodiscard]] runtime::CampaignRunner& runner() noexcept { return *runner_; }
  [[nodiscard]] std::size_t threads() const noexcept { return runner_->threads(); }
  [[nodiscard]] std::size_t shards() const noexcept { return runner_->shards(); }
  [[nodiscard]] bool json_enabled() const noexcept { return log_.enabled(); }

  /// Monte-Carlo data point (see CampaignRunner::run_point).
  [[nodiscard]] core::LinkStats run_point(const std::string& point_id,
                                          const core::SimConfig& cfg) {
    return runner_->run_point(point_id, cfg);
  }

  /// Checkpointed §6.3 bisection (see CampaignRunner::min_snr_for_per).
  [[nodiscard]] double min_snr_for_per(const std::string& point_id,
                                       const core::SimConfig& cfg,
                                       double target_per = 0.5) {
    return runner_->min_snr_for_per(point_id, cfg, target_per);
  }

  /// Analytic point: when `point_id` is journaled under `params_hash`,
  /// republish the stored record verbatim and return true (caller skips
  /// the computation). Checks for a drain request at the point boundary.
  [[nodiscard]] bool replay_point(const std::string& point_id, std::uint64_t params_hash) {
    if (runtime::CampaignRunner::interrupt_requested()) {
      journal_.flush();
      throw runtime::CampaignInterrupted();
    }
    if (!journal_.is_open()) return false;
    if (const std::string* record = journal_.find_point({point_id, params_hash})) {
      log_.write_raw(*record);
      return true;
    }
    return false;
  }

  /// Publish one data-point record: stamp provenance, append to the
  /// JSONL log, journal it (so resume republishes these exact bytes) and
  /// log the wall time to the timing sidecar.
  void emit(const std::string& point_id, std::uint64_t params_hash, JsonLine line,
            double wall_s) {
    const std::string record = stamp_record(line).str();
    log_.write_raw(record);
    if (journal_.is_open()) journal_.record_point({point_id, params_hash}, record);
    if (timing_.enabled()) {
      JsonLine timing;
      timing.add("point", point_id.c_str()).add("wall_s", wall_s);
      timing_.write_raw(timing.str());
    }
  }

  /// Normal completion: publishes the JSONL atomically (via destructors).
  int finish(int status = 0) { return status; }

  /// Graceful-drain completion: abandon the half-written logs (their .tmp
  /// stays for the next run's cleanup), flush the journal, tell the user
  /// how to resume, and return the distinct resumable status.
  int abandon_resumable() {
    log_.abandon();
    timing_.abandon();
    metrics_log_.abandon();
    trace_log_.abandon();
    obs_timing_.abandon();
    journal_.flush();
    std::fprintf(stderr, "%s: interrupted — journal flushed; rerun with --resume=%s\n",
                 figure_.c_str(), journal_.path().c_str());
    return kExitResumable;
  }

 private:
  /// Telemetry emitter, invoked by the campaign runner after every
  /// point's merge (including points replayed wholly from the journal).
  /// Record order is deterministic: per-shard metrics in ascending shard
  /// order, then the merged metrics record; trace events in (point,
  /// shard, event) order with one drop-accounting record per shard that
  /// overflowed its ring. Stage timings are wall-clock and go to the
  /// `.timing` sidecar, never the published streams.
  void emit_telemetry(const std::string& point_id,
                      const std::vector<obs::ShardTelemetry>& shards) {
    if (metrics_log_.enabled()) {
      for (std::size_t i = 0; i < shards.size(); ++i) {
        JsonLine line;
        line.add("point", point_id.c_str()).add("shard", i);
        line.fragment(obs::metrics_json_body(shards[i].metrics));
        metrics_log_.write(std::move(line));
      }
      const obs::ShardTelemetry merged = obs::merge_telemetry(shards, shards.size());
      JsonLine line;
      line.add("point", point_id.c_str()).add("shard", "merged");
      line.fragment(obs::metrics_json_body(merged.metrics));
      metrics_log_.write(std::move(line));
      if (obs_timing_.enabled()) {
        JsonLine timing;
        timing.add("point", point_id.c_str());
        timing.fragment(obs::scope_stats_json_body(merged.trace));
        obs_timing_.write_raw(timing.str());
      }
    }
    if (trace_log_.enabled()) {
      for (std::size_t i = 0; i < shards.size(); ++i) {
        const obs::TraceSink& sink = shards[i].trace;
        std::size_t seq = 0;
        for (const obs::TraceEvent& ev : sink.events()) {
          JsonLine line;
          line.add("point", point_id.c_str()).add("shard", i).add("seq", seq++);
          line.fragment(obs::trace_event_json_body(ev));
          trace_log_.write(std::move(line));
        }
        if (sink.dropped() > 0) {
          JsonLine line;
          line.add("point", point_id.c_str()).add("shard", i);
          line.add("event", "ring_overflow")
              .add("dropped", sink.dropped())
              .add("total_recorded", sink.total_recorded());
          trace_log_.write(std::move(line));
        }
      }
    }
  }

  std::string figure_;
  runtime::CheckpointJournal journal_;
  std::optional<runtime::CampaignRunner> runner_;
  JsonLog log_;
  JsonLog timing_;
  JsonLog metrics_log_;
  JsonLog trace_log_;
  JsonLog obs_timing_;
};

}  // namespace bhss::bench
