#pragma once

/// @file bench_util.hpp
/// Shared helpers for the per-figure bench harnesses: command-line knobs,
/// table printing, wall-clock timing and machine-readable output. Every
/// sample-domain bench accepts
///   --packets=N   packets per data point (default: quick CI setting;
///                 the paper used 10 000)
///   --seed=N      channel seed
///   --jnr=dB      jammer-to-noise ratio
///   --threads=N   Monte-Carlo worker threads (default: hardware
///                 concurrency; determinism is per shard count, so this
///                 only changes wall time)
///   --json=PATH   append one JSON object per data point to PATH, so the
///                 perf/accuracy trajectory can be tracked across PRs

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bhss::bench {

struct Options {
  std::size_t packets = 12;
  std::uint64_t seed = 7;
  double jnr_db = 30.0;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::string json_path;    ///< empty = JSON output disabled
};

inline Options parse_options(int argc, char** argv, std::size_t default_packets = 12) {
  Options opt;
  opt.packets = default_packets;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      opt.packets = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--jnr=", 6) == 0) {
      opt.jnr_db = std::strtod(argv[i] + 6, nullptr);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opt.threads = static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opt.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--packets=N] [--seed=N] [--jnr=dB] [--threads=N] [--json=PATH]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

inline void header(const char* id, const char* what) {
  std::printf("# %s — %s\n", id, what);
}

/// Wall-clock stopwatch for per-data-point timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One flat JSON object, built key by key. Keys are plain identifiers;
/// string values get minimal escaping (quote, backslash, control chars).
class JsonLine {
 public:
  JsonLine& add(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return raw(key, buf);
  }
  JsonLine& add(const char* key, std::size_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", value);
    return raw(key, buf);
  }
  JsonLine& add(const char* key, const char* value) {
    std::string quoted = "\"";
    for (const char* p = value; *p != '\0'; ++p) {
      const char c = *p;
      if (c == '"' || c == '\\') {
        quoted += '\\';
        quoted += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char esc[8];
        std::snprintf(esc, sizeof(esc), "\\u%04x", static_cast<unsigned>(c));
        quoted += esc;
      } else {
        quoted += c;
      }
    }
    quoted += '"';
    return raw(key, quoted.c_str());
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonLine& raw(const char* key, const char* value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  std::string body_;
};

/// Line-per-record JSON sink (JSONL). Disabled when the path is empty, so
/// benches can call `log.write(...)` unconditionally.
///
/// Records are written to `<path>.tmp` and renamed onto `<path>` when the
/// log is destroyed (normal bench completion). An aborted run therefore
/// leaves only the .tmp file behind: the published path never holds a
/// truncated half-written log that a downstream consumer would misread as
/// a complete sweep.
class JsonLog {
 public:
  JsonLog() = default;
  explicit JsonLog(const std::string& path) : path_(path) {
    if (!path.empty()) {
      tmp_path_ = path + ".tmp";
      file_ = std::fopen(tmp_path_.c_str(), "w");
      if (file_ == nullptr) {
        std::fprintf(stderr, "bench: cannot open %s for writing\n", tmp_path_.c_str());
      }
    }
  }
  ~JsonLog() {
    if (file_ == nullptr) return;
    std::fclose(file_);
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::fprintf(stderr, "bench: cannot publish %s to %s\n", tmp_path_.c_str(),
                   path_.c_str());
    }
  }
  JsonLog(const JsonLog&) = delete;
  JsonLog& operator=(const JsonLog&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }

  void write(const JsonLine& line) {
    if (file_ == nullptr) return;
    const std::string s = line.str();
    std::fprintf(file_, "%s\n", s.c_str());
    std::fflush(file_);
  }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
};

}  // namespace bhss::bench
