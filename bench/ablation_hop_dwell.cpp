// Ablation: hop dwell (symbols per hop) versus the reactive jammer's
// reaction time tau (§3: "the signal bandwidth must be adapted quickly ...
// to resist modern reactive jammers with reaction delays below packet
// transmission times"). SER as a function of both knobs; hopping only
// helps while the dwell stays below tau.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv, 15);
  bench::header("Ablation", "hop dwell vs reactive jammer reaction time (SER)");
  bench::Campaign campaign(opt, "ablation_hop_dwell");

  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const std::vector<std::size_t> dwells = {1, 2, 4, 8, 16};
  const std::vector<std::size_t> taus = {512, 2048, 8192, 32768};

  std::printf("# linear hopping, JNR 30 dB, SNR 15 dB, %zu packets per cell\n", opt.packets);
  std::printf("%-18s", "dwell[sym] \\ tau");
  for (std::size_t tau : taus) std::printf("  %10zu", tau);
  std::printf("\n");

  try {
    for (std::size_t dwell : dwells) {
      std::printf("%-18zu", dwell);
      for (std::size_t tau : taus) {
        core::SimConfig cfg;
        cfg.system.pattern = core::HopPattern::make(core::HopPatternType::linear, bands);
        cfg.system.hopping = true;
        cfg.system.symbols_per_hop = dwell;
        cfg.payload_len = 6;
        cfg.n_packets = opt.packets;
        cfg.channel_seed = opt.seed;
        cfg.snr_db = 15.0;
        cfg.jnr_db = 30.0;
        cfg.jammer.kind = core::JammerSpec::Kind::reactive;
        cfg.jammer.reaction_delay = tau;
        char point[48];
        std::snprintf(point, sizeof(point), "dwell%zu_tau%zu", dwell, tau);
        const bench::Stopwatch watch;
        const core::LinkStats s = campaign.run_point(point, cfg);
        std::printf("  %10.3f", s.ser());
        std::fflush(stdout);
        campaign.emit(point, runtime::CampaignRunner::params_hash(cfg, campaign.shards()),
                      bench::JsonLine()
                          .add("figure", "ablation_hop_dwell")
                          .add("dwell_symbols", dwell)
                          .add("tau_samples", tau)
                          .add("ser", s.ser())
                          .add("per", s.per())
                          .add("packets", s.packets)
                          .add("shards", campaign.shards()),
                      watch.seconds());
      }
      std::printf("\n");
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  std::printf("\n# expected: SER shrinks along each row — a slower jammer spends a\n"
              "# larger fraction of every hop mismatched. The symbols-per-hop knob\n"
              "# matters less than tau here because a 'symbol' dwell lasts 64x\n"
              "# longer at the narrowest bandwidth than at the widest, so the\n"
              "# narrow hops dominate the matched-time budget at every setting.\n");
  return campaign.finish();
}
