// Fault campaign: graceful-degradation curve of the BHSS receiver under
// the deterministic transient-fault matrix (jammer power bursts, deep
// fades, sample drops/duplications, clock jumps, CFO steps, NaN/Inf
// corruption). Sweeps a uniform per-packet fault rate and reports, for
// each intensity, the full failure taxonomy next to PER/throughput —
// once with the bounded re-acquisition chain enabled and once in
// single-shot mode (reacquisition.max_attempts = 1), so the value of the
// recovery machinery is measured, not asserted.
//
// Expected shape: PER degrades smoothly with intensity (no cliff), the
// recovery rows sit at or below the single-shot rows, and every statistic
// stays finite at every intensity — a NaN anywhere in this table is a
// regression in the scrubbing/fallback chain.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

namespace {

bool stats_finite(const bhss::core::LinkStats& s) {
  return std::isfinite(s.per()) && std::isfinite(s.ser()) &&
         std::isfinite(s.throughput_bps) && std::isfinite(s.airtime_s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv, 48);
  bench::Campaign campaign(opt, "fault_campaign");
  bench::header("Fault campaign",
                "failure taxonomy and PER vs per-packet fault intensity");

  // Thermal channel only: the sweep must attribute every lost frame to the
  // fault matrix, not to a jammer the taxonomy cannot separate out. The
  // jammer benches cover the adversarial axis.
  core::SimConfig cfg;
  cfg.system.sync = core::SyncMode::preamble;
  cfg.snr_db = 18.0;
  cfg.n_packets = opt.packets;
  cfg.channel_seed = opt.seed;

  const std::vector<double> intensities = {0.0, 0.02, 0.05, 0.1, 0.2, 0.4};

  std::printf("%9s  %-11s  %7s  %7s  %12s  %6s  %6s  %6s  %6s  %6s  %6s  %6s\n",
              "intensity", "mode", "per", "ser", "tput_bps", "sylost", "reacq",
              "fallbk", "scrub", "inject", "sh_to", "sh_re");

  bool all_finite = true;
  try {
    for (const double p : intensities) {
      for (const bool recovery : {true, false}) {
        core::SimConfig c = cfg;
        c.faults.set_uniform_rate(p);
        if (!recovery) c.system.reacquisition.max_attempts = 1;

        const char* mode = recovery ? "recovery" : "single_shot";
        char point[48];
        std::snprintf(point, sizeof(point), "i%g_%s", p, mode);
        const bench::Stopwatch watch;
        const core::LinkStats s = campaign.run_point(point, c);
        all_finite = all_finite && stats_finite(s);

        std::printf("%9.2f  %-11s  %7.4f  %7.4f  %12.1f  %6zu  %6zu  %6zu  %6zu  %6zu  %6zu  %6zu\n",
                    p, mode, s.per(), s.ser(), s.throughput_bps, s.sync_lost,
                    s.reacquired, s.filter_fallback, s.corrupt_input_rejected,
                    s.faults_injected, s.shard_timeout, s.shard_retried);

        bench::JsonLine line;
        line.add("bench", "fault_campaign")
            .add("intensity", p)
            .add("mode", mode)
            .add("packets", s.packets)
            .add("per", s.per())
            .add("ser", s.ser())
            .add("throughput_bps", s.throughput_bps)
            .add("detected", s.detected)
            .add("sync_lost", s.sync_lost)
            .add("reacquired", s.reacquired)
            .add("filter_fallback", s.filter_fallback)
            .add("corrupt_input_rejected", s.corrupt_input_rejected)
            .add("faults_injected", s.faults_injected)
            .add("shard_timeout", s.shard_timeout)
            .add("shard_retried", s.shard_retried);
        campaign.emit(point, runtime::CampaignRunner::params_hash(c, campaign.shards()),
                      std::move(line), watch.seconds());
      }
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  if (!all_finite) {
    std::fprintf(stderr, "fault_campaign: non-finite statistic in the sweep\n");
    return 1;
  }
  std::printf("# all statistics finite across the fault matrix\n");
  return campaign.finish();
}
