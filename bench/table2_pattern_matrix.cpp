// Table 2: power advantage [dB] when both the BHSS signal and the jammer
// hop their bandwidths randomly — all nine combinations of the linear /
// exponential / parabolic patterns. Reference as in Fig. 14: the fixed
// 10 MHz receiver against a matched 10 MHz jammer.
//
// Expected shape (paper):
//             jammer:  linear  exponential  parabolic
//   signal linear        9.6      6.5         12.5
//   signal exponential  15.7      3.3         15.2
//   signal parabolic    12.2     11.4         13.7
// i.e. exponential-vs-exponential is the worst cell, the parabolic signal
// pattern has the best worst case (11.4 dB), and the overall average sits
// near 11.4 dB.

#include <algorithm>
#include <cstdio>

#include "baseline/dsss_baseline.hpp"
#include "bench_util.hpp"
#include "core/link_simulator.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv, 10);
  bench::header("Table 2", "power advantage [dB]: signal pattern x jammer pattern");
  bench::Campaign campaign(opt, "table2");
  std::printf("# packets per SNR point: %zu (paper: 10000); jammer at JNR %.0f dB; "
              "%zu threads, %zu shards\n",
              opt.packets, opt.jnr_db, campaign.threads(), campaign.shards());

  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const double jnr_db = opt.jnr_db;

  core::SimConfig reference;
  reference.system = baseline::dsss_config(bands, bands.widest_index());
  reference.payload_len = 6;
  reference.n_packets = opt.packets;
  reference.channel_seed = opt.seed;
  reference.jnr_db = jnr_db;
  reference.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  reference.jammer.bandwidth_frac = bands.bandwidth_frac(bands.widest_index());

  const core::HopPatternType patterns[] = {core::HopPatternType::linear,
                                           core::HopPatternType::exponential,
                                           core::HopPatternType::parabolic};

  double best_worst = -1e9;
  std::string best_pattern;
  try {
    const double ref_min_snr = campaign.min_snr_for_per("reference", reference);
    std::printf("# fixed-bandwidth reference min SNR: %.1f dB\n\n", ref_min_snr);

    std::printf("%-18s", "signal \\ jammer");
    for (auto j : patterns) std::printf("  %12s", to_string(j).c_str());
    std::printf("  %12s\n", "worst case");

    for (auto sig : patterns) {
      std::printf("%-18s", to_string(sig).c_str());
      double worst = 1e9;
      for (auto jam : patterns) {
        core::SimConfig cfg;
        cfg.system.pattern = core::HopPattern::make(sig, bands);
        cfg.system.hopping = true;
        cfg.system.symbols_per_hop = 1024;  // one bandwidth per packet, see Fig. 14 bench
        cfg.payload_len = 6;
        cfg.n_packets = opt.packets;
        cfg.channel_seed = opt.seed;
        cfg.jnr_db = jnr_db;
        cfg.jammer.kind = core::JammerSpec::Kind::hopping;
        cfg.jammer.hop_probs = core::HopPattern::make(jam, bands).probabilities();
        cfg.jammer.dwell_samples = 4096;
        char point[48];
        std::snprintf(point, sizeof(point), "sig-%s_jam-%s", to_string(sig).c_str(),
                      to_string(jam).c_str());
        const bench::Stopwatch watch;
        const double adv = ref_min_snr - campaign.min_snr_for_per(point, cfg);
        worst = std::min(worst, adv);
        std::printf("  %12.1f", adv);
        std::fflush(stdout);
        const std::uint64_t hash = bench::ParamsHash()
                                       .add(to_string(sig).c_str())
                                       .add(to_string(jam).c_str())
                                       .add(jnr_db)
                                       .add(std::uint64_t{opt.packets})
                                       .add(opt.seed)
                                       .add(std::uint64_t{campaign.shards()})
                                       .value();
        campaign.emit(point, hash,
                      bench::JsonLine()
                          .add("figure", "table2")
                          .add("signal_pattern", to_string(sig).c_str())
                          .add("jammer_pattern", to_string(jam).c_str())
                          .add("advantage_db", adv)
                          .add("packets", opt.packets)
                          .add("shards", campaign.shards()),
                      watch.seconds());
      }
      std::printf("  %12.1f\n", worst);
      if (worst > best_worst) {
        best_worst = worst;
        best_pattern = to_string(sig);
      }
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  std::printf("\n# most robust signal pattern (max-min): %s, worst case %.1f dB\n",
              best_pattern.c_str(), best_worst);
  std::printf("# paper: parabolic is most robust with a worst case of 11.4 dB\n");
  return campaign.finish();
}
