// Figure 14: power advantage of BHSS (hopping per the linear /
// exponential / parabolic patterns) over the fixed-bandwidth spread
// spectrum reference, against jammers of fixed bandwidth. As in the paper
// (§6.4.2), the reference receiver runs the same code base with hopping
// disabled at the maximum bandwidth (10 MHz) and faces a matched 10 MHz
// jammer; the power advantage is the difference of the minimum SNRs that
// keep packet loss below 50 %.
//
// Expected shape (paper): advantages between ~2 and ~26 dB; largest for
// the narrowest jammer (0.156 MHz) under every pattern; the minimum at a
// pattern-dependent jammer bandwidth (5 MHz for linear, 0.625 MHz for
// parabolic, 10 MHz for exponential).

#include <cstdio>
#include <vector>

#include "baseline/dsss_baseline.hpp"
#include "bench_util.hpp"
#include "core/link_simulator.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv, 10);
  bench::header("Figure 14", "power advantage vs jammer bandwidth for the 3 hop patterns");
  bench::Campaign campaign(opt, "fig14");
  std::printf("# packets per SNR point: %zu (paper: 10000); jammer at JNR %.0f dB; "
              "%zu threads, %zu shards\n",
              opt.packets, opt.jnr_db, campaign.threads(), campaign.shards());

  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const double jnr_db = opt.jnr_db;

  // Reference: fixed 10 MHz signal, matched 10 MHz jammer.
  core::SimConfig reference;
  reference.system = baseline::dsss_config(bands, bands.widest_index());
  reference.payload_len = 6;
  reference.n_packets = opt.packets;
  reference.channel_seed = opt.seed;
  reference.jnr_db = jnr_db;
  reference.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  reference.jammer.bandwidth_frac = bands.bandwidth_frac(bands.widest_index());

  const core::HopPatternType patterns[] = {core::HopPatternType::linear,
                                           core::HopPatternType::exponential,
                                           core::HopPatternType::parabolic};

  std::vector<std::vector<double>> advantage(bands.size());
  double ref_min_snr = 0.0;
  try {
    ref_min_snr = campaign.min_snr_for_per("reference", reference);
    std::printf("# fixed-bandwidth reference min SNR: %.1f dB\n\n", ref_min_snr);

    std::printf("%-16s", "JammerBW[MHz]");
    for (auto p : patterns) std::printf("  %12s", to_string(p).c_str());
    std::printf("\n");

    for (std::size_t jam = 0; jam < bands.size(); ++jam) {
      std::printf("%-16.4f", bands.bandwidth_hz(jam) / 1e6);
      for (auto type : patterns) {
        core::SimConfig cfg;
        cfg.system.pattern = core::HopPattern::make(type, bands);
        cfg.system.hopping = true;
        // One bandwidth per packet: the paper's per-frame CRC accounting
        // only yields its measured advantages when a packet rides a single
        // hop (otherwise any frame touching the jammer-matched level is
        // lost and the 50%-PER threshold collapses to the matched case) —
        // see EXPERIMENTS.md. Sub-packet hopping is exercised against the
        // reactive jammer in ablation_hop_dwell.
        cfg.system.symbols_per_hop = 1024;
        cfg.payload_len = 6;
        cfg.n_packets = opt.packets;
        cfg.channel_seed = opt.seed;
        cfg.jnr_db = jnr_db;
        cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
        cfg.jammer.bandwidth_frac = bands.bandwidth_frac(jam);
        char point[48];
        std::snprintf(point, sizeof(point), "adv_bj%zu_%s", jam, to_string(type).c_str());
        const bench::Stopwatch watch;
        const double min_snr = campaign.min_snr_for_per(point, cfg);
        const double adv = ref_min_snr - min_snr;
        advantage[jam].push_back(adv);
        std::printf("  %12.1f", adv);
        std::fflush(stdout);
        const std::uint64_t hash = bench::ParamsHash()
                                       .add(to_string(type).c_str())
                                       .add(std::uint64_t{jam})
                                       .add(jnr_db)
                                       .add(std::uint64_t{opt.packets})
                                       .add(opt.seed)
                                       .add(std::uint64_t{campaign.shards()})
                                       .value();
        campaign.emit(point, hash,
                      bench::JsonLine()
                          .add("figure", "fig14")
                          .add("section", "advantage")
                          .add("pattern", to_string(type).c_str())
                          .add("bj_mhz", bands.bandwidth_hz(jam) / 1e6)
                          .add("min_snr_db", min_snr)
                          .add("advantage_db", adv)
                          .add("packets", opt.packets)
                          .add("shards", campaign.shards()),
                      watch.seconds());
      }
      std::printf("\n");
    }

    std::printf("\n# paper: advantages between 2 and 26 dB depending on pattern and\n"
                "# jammer bandwidth; highest advantage at 0.156 MHz for all patterns.\n");

    // Complementary view that does not depend on resolving the knife-edge
    // 50 % threshold (see EXPERIMENTS.md): fraction of frames delivered at
    // a fixed SNR 12 dB below the reference threshold. The reference link
    // delivers nothing here; every positive entry is pure hopping gain.
    const double probe_snr = ref_min_snr - 12.0;
    std::printf("\n# delivered fraction at SNR %.1f dB (reference link: ~0):\n", probe_snr);
    std::printf("%-16s", "JammerBW[MHz]");
    for (auto p : patterns) std::printf("  %12s", to_string(p).c_str());
    std::printf("\n");
    for (std::size_t jam = 0; jam < bands.size(); ++jam) {
      std::printf("%-16.4f", bands.bandwidth_hz(jam) / 1e6);
      for (auto type : patterns) {
        core::SimConfig cfg;
        cfg.system.pattern = core::HopPattern::make(type, bands);
        cfg.system.hopping = true;
        cfg.system.symbols_per_hop = 1024;
        cfg.payload_len = 6;
        cfg.n_packets = opt.packets;
        cfg.channel_seed = opt.seed;
        cfg.snr_db = probe_snr;
        cfg.jnr_db = jnr_db;
        cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
        cfg.jammer.bandwidth_frac = bands.bandwidth_frac(jam);
        char point[48];
        std::snprintf(point, sizeof(point), "del_bj%zu_%s", jam, to_string(type).c_str());
        const bench::Stopwatch watch;
        const core::LinkStats s = campaign.run_point(point, cfg);
        std::printf("  %12.2f", 1.0 - s.per());
        std::fflush(stdout);
        const std::uint64_t hash = bench::ParamsHash()
                                       .add(to_string(type).c_str())
                                       .add(std::uint64_t{jam})
                                       .add(probe_snr)
                                       .add(jnr_db)
                                       .add(std::uint64_t{opt.packets})
                                       .add(opt.seed)
                                       .add(std::uint64_t{campaign.shards()})
                                       .value();
        campaign.emit(point, hash,
                      bench::JsonLine()
                          .add("figure", "fig14")
                          .add("section", "delivered")
                          .add("pattern", to_string(type).c_str())
                          .add("bj_mhz", bands.bandwidth_hz(jam) / 1e6)
                          .add("snr_db", probe_snr)
                          .add("per", s.per())
                          .add("ser", s.ser())
                          .add("throughput_bps", s.throughput_bps)
                          .add("packets", opt.packets)
                          .add("shards", campaign.shards()),
                      watch.seconds());
      }
      std::printf("\n");
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }
  return campaign.finish();
}
