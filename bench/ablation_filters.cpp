// Ablation: the receiver's filter design choices (DESIGN.md §5).
//  (a) filter policy — adaptive control logic vs off / always-lowpass /
//      always-excision, under narrow-band, wide-band and matched jammers
//      (tests eq. (10)'s "don't excise a matched jammer" rule);
//  (b) excision style — literal eq. (3) whitening vs the template-notch
//      variant (self-noise cost on an oversampled waveform);
//  (c) PSD estimator — Welch vs Bartlett vs single periodogram.

#include <cstdio>
#include <string>

#include "baseline/dsss_baseline.hpp"
#include "bench_util.hpp"
#include "core/link_simulator.hpp"

namespace {

using namespace bhss;

const char* policy_name(core::FilterPolicy policy) {
  switch (policy) {
    case core::FilterPolicy::off: return "off";
    case core::FilterPolicy::adaptive: return "adaptive";
    case core::FilterPolicy::always_lowpass: return "lowpass";
    case core::FilterPolicy::always_excision: return "excision";
  }
  return "?";
}

core::SimConfig scenario(const core::BandwidthSet& bands, std::size_t sig_level,
                         double jam_frac, double snr_db, const bench::Options& opt) {
  core::SimConfig cfg;
  cfg.system = baseline::dsss_config(bands, sig_level);
  cfg.payload_len = 6;
  cfg.n_packets = opt.packets * 2;
  cfg.channel_seed = opt.seed;
  cfg.snr_db = snr_db;
  cfg.jnr_db = 25.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = jam_frac;
  return cfg;
}

/// `slug` is the whitespace-free campaign id of the scenario; `name` the
/// human table label.
void run_policy_row(const char* slug, const char* name, core::SimConfig cfg,
                    bench::Campaign& campaign) {
  std::printf("%-28s", name);
  for (auto policy : {core::FilterPolicy::off, core::FilterPolicy::adaptive,
                      core::FilterPolicy::always_lowpass, core::FilterPolicy::always_excision}) {
    cfg.system.filter_policy = policy;
    const std::string point = std::string("policy_") + slug + "_" + policy_name(policy);
    const bench::Stopwatch watch;
    const core::LinkStats s = campaign.run_point(point, cfg);
    std::printf("  %6.3f/%-4zu", s.ser(), s.ok);
    const std::uint64_t hash = runtime::CampaignRunner::params_hash(cfg, campaign.shards());
    campaign.emit(point, hash,
                  bench::JsonLine()
                      .add("figure", "ablation_filters")
                      .add("section", "policy")
                      .add("scenario", name)
                      .add("policy", policy_name(policy))
                      .add("ser", s.ser())
                      .add("per", s.per())
                      .add("delivered", s.ok)
                      .add("packets", s.packets),
                  watch.seconds());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv, 15);
  bench::header("Ablation", "filter policy, excision style, PSD estimator");
  bench::Campaign campaign(opt, "ablation_filters");
  const core::BandwidthSet bands = core::BandwidthSet::paper();

  try {
    std::printf("\n(a) filter policy: SER/packets-delivered per policy\n");
    std::printf("%-28s  %-11s  %-11s  %-11s  %-11s\n", "scenario", "off", "adaptive",
                "lowpass", "excision");
    run_policy_row("nb16", "NB jam  Bp/Bj=16, snr12",
                   scenario(bands, 0, bands.bandwidth_frac(4), 12.0, opt), campaign);
    run_policy_row("nb4", "NB jam  Bp/Bj=4,  snr12",
                   scenario(bands, 0, bands.bandwidth_frac(2), 12.0, opt), campaign);
    run_policy_row("matched", "matched Bp/Bj=1,  snr22",
                   scenario(bands, 0, bands.bandwidth_frac(0), 22.0, opt), campaign);
    run_policy_row("wb4", "WB jam  Bp/Bj=1/4,snr18",
                   scenario(bands, 2, bands.bandwidth_frac(0), 18.0, opt), campaign);
    std::printf("# expected: adaptive tracks the best column per row; forcing the\n"
                "# excision filter on a matched jammer (row 3) is NOT better than off\n"
                "# (eq. (10)); the low-pass only matters for the wide-band row.\n");

    std::printf("\n(b) excision style on the NB scenario (SER, adaptive policy)\n");
    for (auto style : {core::ExcisionStyle::whitening, core::ExcisionStyle::template_notch}) {
      core::SimConfig cfg = scenario(bands, 0, bands.bandwidth_frac(4), 12.0, opt);
      cfg.system.logic.excision_style = style;
      const bool whiten = style == core::ExcisionStyle::whitening;
      const char* style_name = whiten ? "eq.(3) whitening" : "template notch";
      const std::string point =
          std::string("excision_jammed_") + (whiten ? "whitening" : "notch");
      const bench::Stopwatch watch;
      const core::LinkStats s = campaign.run_point(point, cfg);
      std::printf("  %-16s SER %.3f, delivered %zu/%zu\n", style_name, s.ser(), s.ok, s.packets);
      campaign.emit(point, runtime::CampaignRunner::params_hash(cfg, campaign.shards()),
                    bench::JsonLine()
                        .add("figure", "ablation_filters")
                        .add("section", "excision_jammed")
                        .add("style", style_name)
                        .add("ser", s.ser())
                        .add("delivered", s.ok)
                        .add("packets", s.packets),
                    watch.seconds());
    }
    std::printf("# and with no jammer at snr 8 (the self-noise cost of whitening):\n");
    for (auto style : {core::ExcisionStyle::whitening, core::ExcisionStyle::template_notch}) {
      core::SimConfig cfg = scenario(bands, 0, 1.0, 8.0, opt);
      cfg.jammer.kind = core::JammerSpec::Kind::none;
      cfg.system.filter_policy = core::FilterPolicy::always_excision;
      cfg.system.logic.excision_style = style;
      const bool whiten = style == core::ExcisionStyle::whitening;
      const char* style_name = whiten ? "eq.(3) whitening" : "template notch";
      const std::string point =
          std::string("excision_clean_") + (whiten ? "whitening" : "notch");
      const bench::Stopwatch watch;
      const core::LinkStats s = campaign.run_point(point, cfg);
      std::printf("  %-16s SER %.3f, delivered %zu/%zu\n", style_name, s.ser(), s.ok, s.packets);
      campaign.emit(point, runtime::CampaignRunner::params_hash(cfg, campaign.shards()),
                    bench::JsonLine()
                        .add("figure", "ablation_filters")
                        .add("section", "excision_clean")
                        .add("style", style_name)
                        .add("ser", s.ser())
                        .add("delivered", s.ok)
                        .add("packets", s.packets),
                    watch.seconds());
    }

    std::printf("\n(c) PSD estimator on the NB scenario (SER, adaptive policy)\n");
    for (auto method : {core::PsdMethod::welch, core::PsdMethod::bartlett,
                        core::PsdMethod::periodogram}) {
      core::SimConfig cfg = scenario(bands, 0, bands.bandwidth_frac(4), 12.0, opt);
      cfg.system.logic.psd_method = method;
      const char* name = method == core::PsdMethod::welch      ? "welch"
                         : method == core::PsdMethod::bartlett ? "bartlett"
                                                               : "periodogram";
      const std::string point = std::string("psd_") + name;
      const bench::Stopwatch watch;
      const core::LinkStats s = campaign.run_point(point, cfg);
      std::printf("  %-12s SER %.3f, delivered %zu/%zu\n", name, s.ser(), s.ok, s.packets);
      campaign.emit(point, runtime::CampaignRunner::params_hash(cfg, campaign.shards()),
                    bench::JsonLine()
                        .add("figure", "ablation_filters")
                        .add("section", "psd")
                        .add("method", name)
                        .add("ser", s.ser())
                        .add("delivered", s.ok)
                        .add("packets", s.packets),
                    watch.seconds());
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }
  return campaign.finish();
}
