// Figure 7: upper bound on the SNR improvement factor gamma vs bandwidth
// ratio Bp/Bj, for jammer powers 10/20/30 dBm and sigma_n^2 = 0.01.
// Paper anchors: ~0 dB at Bp/Bj = 0.01..., rising to ~20 dB as Bp/Bj -> 1
// from below on the wide-band side; saturating near the jammer power
// (10/20/30 dB) for large Bp/Bj on the narrow-band side.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "fig07");
  bench::header("Figure 7", "upper bound on SNR improvement factor (eqs. 11/12)");
  const double noise_var = 0.01;
  const std::vector<double> rho_dbm = {10.0, 20.0, 30.0};

  std::printf("%12s", "Bp/Bj");
  for (double r : rho_dbm) std::printf("  gamma@%2.0fdBm", r);
  std::printf("\n");

  const bench::Stopwatch total;
  try {
    std::size_t step = 0;
    for (double e = -2.0; e <= 2.0 + 1e-9; e += 0.125, ++step) {
      const double ratio = std::pow(10.0, e);
      std::printf("%12.4f", ratio);
      for (std::size_t p = 0; p < rho_dbm.size(); ++p) {
        const double r = rho_dbm[p];
        const bench::Stopwatch watch;
        const double gamma = core::theory::snr_improvement_bound(
            ratio, dsp::db_to_linear(r), noise_var);
        std::printf("  %11.2f", dsp::linear_to_db(gamma));
        char point[32];
        std::snprintf(point, sizeof(point), "e%zu_rho%zu", step, p);
        const std::uint64_t hash =
            bench::ParamsHash().add(ratio).add(r).add(noise_var).value();
        if (!campaign.replay_point(point, hash)) {
          campaign.emit(point, hash,
                        bench::JsonLine()
                            .add("figure", "fig07")
                            .add("bp_over_bj", ratio)
                            .add("jammer_dbm", r)
                            .add("gamma_db", dsp::linear_to_db(gamma)),
                        watch.seconds());
        }
      }
      std::printf("\n");
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }
  std::printf("# total wall time: %.3f s\n", total.seconds());

  // Paper-text anchors for EXPERIMENTS.md.
  std::printf("\n# anchors: gamma(Bp/Bj=0.01, 20dBm) = %.1f dB (paper: ~20 dB)\n",
              dsp::linear_to_db(core::theory::snr_improvement_bound(0.01, 100.0, noise_var)));
  std::printf("# anchors: gamma(Bp/Bj=100, 30dBm) = %.1f dB (paper: ~30 dB)\n",
              dsp::linear_to_db(core::theory::snr_improvement_bound(100.0, 1000.0, noise_var)));
  return campaign.finish();
}
