// Figure 13: power advantage of interference filtering for fixed
// bandwidth offsets, measured on the full sample-domain link (our stand-in
// for the paper's SDR testbed). For each of the 49 (signal, jammer)
// bandwidth constellations of the seven paper bandwidths we search the
// minimum SNR that keeps packet loss below 50 % with the adaptive filter
// and with filtering disabled; the advantage is their ratio in dB,
// averaged per bandwidth ratio Bp/Bj and compared against the theoretical
// bound of §5.1.
//
// Expected shape (paper): the wide-band side (Bp/Bj < 1) follows the bound
// closely; the narrow-band side realises roughly half the bound in dB for
// 1 < Bp/Bj < 10 and > 25 dB for Bp/Bj > 10. See EXPERIMENTS.md for the
// discussion of our receiver's matched filter absorbing part of the
// wide-band gain.

#include <cstdio>
#include <map>
#include <vector>

#include "baseline/dsss_baseline.hpp"
#include "bench_util.hpp"
#include "core/link_simulator.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv, 10);
  bench::header("Figure 13", "power advantage vs bandwidth ratio, fixed offsets (sample-domain)");
  bench::Campaign campaign(opt, "fig13");
  std::printf("# packets per SNR point: %zu (paper: 10000); jammer at JNR %.0f dB; "
              "%zu threads, %zu shards\n",
              opt.packets, opt.jnr_db, campaign.threads(), campaign.shards());

  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const double jnr_db = opt.jnr_db;

  // advantage samples grouped by Bp/Bj.
  std::map<double, std::vector<double>> by_ratio;

  try {
    for (std::size_t sig = 0; sig < bands.size(); ++sig) {
      for (std::size_t jam = 0; jam < bands.size(); ++jam) {
        core::SimConfig cfg;
        cfg.system = baseline::dsss_config(bands, sig);
        cfg.payload_len = 6;
        cfg.n_packets = opt.packets;
        cfg.channel_seed = opt.seed;
        cfg.jnr_db = jnr_db;
        cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
        cfg.jammer.bandwidth_frac = bands.bandwidth_frac(jam);

        char point[48];
        std::snprintf(point, sizeof(point), "bp%zu_bj%zu", sig, jam);
        const bench::Stopwatch watch;
        const double with_filter =
            campaign.min_snr_for_per(std::string(point) + "/filter", cfg);
        core::SimConfig off = cfg;
        off.system.filter_policy = core::FilterPolicy::off;
        const double without_filter =
            campaign.min_snr_for_per(std::string(point) + "/nofilter", off);

        const double ratio = bands.bandwidth_frac(sig) / bands.bandwidth_frac(jam);
        by_ratio[ratio].push_back(without_filter - with_filter);
        std::fprintf(stderr, "  Bp=%5.3f MHz Bj=%5.3f MHz: adv %.1f dB\n",
                     bands.bandwidth_hz(sig) / 1e6, bands.bandwidth_hz(jam) / 1e6,
                     without_filter - with_filter);
        const std::uint64_t hash = bench::ParamsHash()
                                       .add(std::uint64_t{sig})
                                       .add(std::uint64_t{jam})
                                       .add(jnr_db)
                                       .add(std::uint64_t{opt.packets})
                                       .add(opt.seed)
                                       .add(std::uint64_t{campaign.shards()})
                                       .value();
        campaign.emit(point, hash,
                      bench::JsonLine()
                          .add("figure", "fig13")
                          .add("bp_mhz", bands.bandwidth_hz(sig) / 1e6)
                          .add("bj_mhz", bands.bandwidth_hz(jam) / 1e6)
                          .add("bp_over_bj", ratio)
                          .add("min_snr_filter_db", with_filter)
                          .add("min_snr_nofilter_db", without_filter)
                          .add("advantage_db", without_filter - with_filter)
                          .add("packets", opt.packets)
                          .add("shards", campaign.shards()),
                      watch.seconds());
      }
    }
  } catch (const runtime::CampaignInterrupted&) {
    return campaign.abandon_resumable();
  }

  std::printf("\n%10s  %10s  %14s  %14s\n", "Bp/Bj", "n", "advantage[dB]", "bound[dB]");
  for (const auto& [ratio, samples] : by_ratio) {
    double mean = 0.0;
    for (double v : samples) mean += v;
    mean /= static_cast<double>(samples.size());
    const double bound = dsp::linear_to_db(core::theory::snr_improvement_bound(
        ratio, dsp::db_to_linear(jnr_db), 1.0));
    std::printf("%10.4f  %10zu  %14.1f  %14.1f\n", ratio, samples.size(), mean, bound);
  }
  return campaign.finish();
}
