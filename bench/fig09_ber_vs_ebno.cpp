// Figure 9: bit error probability of BHSS vs DSSS/FHSS against Eb/N0.
// Setup per the paper: per-chip SJR = -20 dB, processing gain L = 20 dB,
// bandwidth hopping range 100; jammer bandwidths Bj/max(Bp) in
// {1, 0.3, 0.1, 0.03, 0.01} plus a randomly hopping jammer.
// Expected shape: DSSS/FHSS pinned near 0.5 across the plot; every BHSS
// curve far below; fixed narrow jammers worst for the jammer; the random
// jammer between the extremes (~1e-7 at 15 dB in the paper).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  using core::theory::BhssModel;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "fig09");
  bench::header("Figure 9", "BER vs Eb/N0: BHSS vs DSSS/FHSS (SJR -20 dB, L 20 dB, range 100)");

  const BhssModel model = BhssModel::log_uniform(100.0, 7, dsp::db_to_linear(20.0),
                                                 dsp::db_to_linear(20.0));
  const std::vector<double> jam_bw = {1.0, 0.3, 0.1, 0.03, 0.01};

  std::printf("%8s  %12s", "Eb/N0dB", "DSSS/FHSS");
  for (double bj : jam_bw) std::printf("  BHSS:Bj=%-5.2f", bj);
  std::printf("  %12s\n", "BHSS:random");

  try {
    for (double ebno_db = 0.0; ebno_db <= 20.0 + 1e-9; ebno_db += 1.0) {
      const bench::Stopwatch watch;
      const double ebno = dsp::db_to_linear(ebno_db);
      std::printf("%8.1f  %12.3e", ebno_db, model.ber_dsss(ebno));
      bench::JsonLine line;
      line.add("figure", "fig09").add("ebno_db", ebno_db).add("ber_dsss", model.ber_dsss(ebno));
      for (double bj : jam_bw) {
        const double ber = model.ber_fixed_jammer(bj, ebno);
        std::printf("  %12.3e", ber);
        char key[32];
        std::snprintf(key, sizeof(key), "ber_bj_%g", bj);
        line.add(key, ber);
      }
      const double ber_random = model.ber_random_jammer(ebno);
      std::printf("  %12.3e\n", ber_random);
      line.add("ber_random", ber_random);
      char point[32];
      std::snprintf(point, sizeof(point), "ebno%.0f", ebno_db);
      const std::uint64_t hash = bench::ParamsHash().add(ebno_db).add("log_uniform_100_7_20_20").value();
      if (!campaign.replay_point(point, hash)) {
        campaign.emit(point, hash, std::move(line), watch.seconds());
      }
    }
  } catch (const runtime::CampaignInterrupted&) {
    return campaign.abandon_resumable();
  }

  const double ebno15 = dsp::db_to_linear(15.0);
  std::printf("\n# anchors at Eb/N0 = 15 dB:\n");
  std::printf("#   DSSS/FHSS BER = %.3e (paper: stays 'close to 0.5')\n",
              model.ber_dsss(ebno15));
  std::printf("#   BHSS random-jammer BER = %.3e (paper: ~1e-7)\n",
              model.ber_random_jammer(ebno15));
  std::printf("#   random jammer worse than Bj=1.0 for the jammer: %s (paper: yes)\n",
              model.ber_random_jammer(ebno15) < model.ber_fixed_jammer(1.0, ebno15) ? "yes"
                                                                                    : "no");
  std::printf("#   random jammer better than Bj=0.01 for the jammer: %s (paper: yes)\n",
              model.ber_random_jammer(ebno15) > model.ber_fixed_jammer(0.01, ebno15) ? "yes"
                                                                                     : "no");
  return campaign.finish();
}
