// Microbenchmarks (google-benchmark) of the hot kernels behind the
// experiments: FFT, direct vs overlap-save FIR filtering, Welch PSD,
// excision design, chip modulation/demodulation, despreading, and a whole
// frame reception. Not a paper figure — these quantify what the
// sample-domain experiments cost and where the time goes.

#include <benchmark/benchmark.h>

#include <random>

#include "channel/link_channel.hpp"
#include "core/control_logic.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/psd.hpp"
#include "phy/modulator.hpp"
#include "phy/spreader.hpp"

namespace {

using namespace bhss;

dsp::cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::cvec x(n);
  for (dsp::cf& v : x) v = dsp::cf{dist(rng), dist(rng)};
  return x;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(n);
  dsp::cvec x = random_signal(n, 1);
  for (auto _ : state) {
    fft.forward(dsp::cspan_mut{x});
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FirDirect(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirFilter fir{random_signal(taps, 2)};
  const dsp::cvec x = random_signal(4096, 3);
  for (auto _ : state) {
    auto y = fir.process(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirDirect)->Arg(16)->Arg(64)->Arg(256);

void BM_FirOverlapSave(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  const dsp::FftConvolver conv{dsp::cspan{random_signal(taps, 4)}};
  const dsp::cvec x = random_signal(4096, 5);
  for (auto _ : state) {
    auto y = conv.filter(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirOverlapSave)->Arg(64)->Arg(256)->Arg(1025);

void BM_WelchPsd(benchmark::State& state) {
  const dsp::cvec x = random_signal(16384, 6);
  for (auto _ : state) {
    auto psd = dsp::welch_psd(x, 256);
    benchmark::DoNotOptimize(psd.data());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_WelchPsd);

void BM_ExcisionDesign(benchmark::State& state) {
  dsp::fvec psd(256, 1.0F);
  for (std::size_t k = 10; k < 20; ++k) psd[k] = 300.0F;
  for (auto _ : state) {
    auto taps = dsp::design_excision_whitening(psd, 1e-6, 0.6);
    benchmark::DoNotOptimize(taps.data());
  }
}
BENCHMARK(BM_ExcisionDesign);

void BM_Modulate(benchmark::State& state) {
  const auto sps = static_cast<std::size_t>(state.range(0));
  const phy::QpskModulator mod(sps);
  std::vector<float> chips(1024);
  std::mt19937 rng(7);
  for (float& c : chips) c = (rng() & 1U) ? 1.0F : -1.0F;
  for (auto _ : state) {
    auto wave = mod.modulate(chips);
    benchmark::DoNotOptimize(wave.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(1024 * sps));
}
BENCHMARK(BM_Modulate)->Arg(2)->Arg(16)->Arg(128);

void BM_DemodulateAndDespread(benchmark::State& state) {
  const auto sps = static_cast<std::size_t>(state.range(0));
  const phy::QpskModulator mod(sps);
  const phy::QpskDemodulator demod(sps);
  phy::Spreader spreader(0x1234);
  std::vector<std::uint8_t> symbols(32);
  for (std::size_t i = 0; i < symbols.size(); ++i) symbols[i] = i % 16;
  const std::vector<float> chips = spreader.spread(symbols);
  const dsp::cvec wave = mod.modulate(chips);
  for (auto _ : state) {
    phy::Despreader despreader(0x1234);
    const dsp::cvec pairs = demod.demodulate_pairs(wave, chips.size());
    std::uint32_t acc = 0;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      acc += despreader
                 .despread_pairs(dsp::cspan{pairs}.subspan(s * 16, 16))
                 .symbol;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(wave.size()));
}
BENCHMARK(BM_DemodulateAndDespread)->Arg(2)->Arg(16)->Arg(128);

void BM_FullFrameReceive(benchmark::State& state) {
  core::SystemConfig sys;
  sys.pattern = core::HopPattern::make(core::HopPatternType::linear,
                                       core::BandwidthSet::paper());
  const core::BhssTransmitter tx(sys);
  const core::BhssReceiver rx(sys);
  channel::AwgnSource noise(8);
  const std::vector<std::uint8_t> payload(8, 0x5A);
  const core::Transmission t = tx.transmit(payload, 1);
  channel::LinkConfig link;
  link.snr_db = 15.0;
  link.tx_delay = 50;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  for (auto _ : state) {
    auto res = rx.receive(sig, 1, payload.size(), 128);
    benchmark::DoNotOptimize(res.crc_ok);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_FullFrameReceive);

}  // namespace
