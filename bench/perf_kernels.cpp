// Microbenchmarks (google-benchmark) of the hot kernels behind the
// experiments: FFT, direct vs overlap-save FIR filtering, Welch PSD,
// excision design, chip modulation/demodulation, despreading, a whole
// frame reception, and the parallel Monte-Carlo runner at 1/2/4/8
// threads. Not a paper figure — these quantify what the sample-domain
// experiments cost and where the time goes.
//
// The *Seed variants benchmark verbatim copies of the pre-optimisation
// kernels (modulo-branch FIR ring buffer, allocate-per-call overlap-save)
// so the speedup of the allocation-free hot paths stays measurable.
//
// Accepts --json=PATH in addition to the native google-benchmark flags;
// it expands to --benchmark_out=PATH --benchmark_out_format=json so the
// same knob works across all benches (see bench_util.hpp).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "adapt/jam_detector.hpp"
#include "channel/link_channel.hpp"
#include "core/control_logic.hpp"
#include "core/link_simulator.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/psd.hpp"
#include "dsp/real_fft.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/utils.hpp"
#include "obs/link_obs.hpp"
#include "phy/chip_table.hpp"
#include "phy/modulator.hpp"
#include "phy/spreader.hpp"
#include "runtime/parallel_link_runner.hpp"
#include "sync/correlate.hpp"

namespace {

using namespace bhss;

dsp::cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::cvec x(n);
  for (dsp::cf& v : x) v = dsp::cf{dist(rng), dist(rng)};
  return x;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(n);
  dsp::cvec x = random_signal(n, 1);
  for (auto _ : state) {
    fft.forward(dsp::cspan_mut{x});
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FirDirect(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirFilter fir{random_signal(taps, 2)};
  const dsp::cvec x = random_signal(4096, 3);
  for (auto _ : state) {
    auto y = fir.process(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirDirect)->Arg(16)->Arg(64)->Arg(256);

void BM_FirOverlapSave(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FftConvolver conv{dsp::cspan{random_signal(taps, 4)}};
  const dsp::cvec x = random_signal(4096, 5);
  dsp::cvec y;
  for (auto _ : state) {
    conv.filter(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirOverlapSave)->Arg(64)->Arg(256)->Arg(1025);

// ------------------------------------------------- seed-kernel comparisons

/// Pre-optimisation FirFilter: modulo-branch ring buffer walk per tap.
class SeedFirFilter {
 public:
  explicit SeedFirFilter(dsp::cvec taps) : taps_(std::move(taps)), head_(0) {
    history_.assign(taps_.size(), dsp::cf{0.0F, 0.0F});
  }

  dsp::cf process(dsp::cf in) noexcept {
    history_[head_] = in;
    dsp::cf acc{0.0F, 0.0F};
    std::size_t idx = head_;
    const std::size_t n = taps_.size();
    for (std::size_t k = 0; k < n; ++k) {
      acc += taps_[k] * history_[idx];
      idx = (idx == 0) ? n - 1 : idx - 1;
    }
    head_ = (head_ + 1 == n) ? 0 : head_ + 1;
    return acc;
  }

 private:
  dsp::cvec taps_;
  dsp::cvec history_;
  std::size_t head_;
};

void BM_FirDirectSeed(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  SeedFirFilter fir{random_signal(taps, 2)};
  const dsp::cvec x = random_signal(4096, 3);
  dsp::cvec y(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = fir.process(x[i]);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirDirectSeed)->Arg(16)->Arg(64)->Arg(256);

/// Pre-optimisation FftConvolver: a fresh fft_size block every call.
void BM_FirOverlapSaveSeed(benchmark::State& state) {
  const auto n_taps = static_cast<std::size_t>(state.range(0));
  const dsp::cvec taps = random_signal(n_taps, 4);
  std::size_t fft_size = 2;
  while (fft_size < std::max<std::size_t>(4 * n_taps, 1024)) fft_size <<= 1;
  const std::size_t block_size = fft_size - n_taps + 1;
  const dsp::Fft fft(fft_size);
  const dsp::cvec taps_spectrum = fft.forward_copy(dsp::cspan{taps});
  const dsp::cvec x = random_signal(4096, 5);
  const std::size_t overlap = n_taps - 1;
  for (auto _ : state) {
    dsp::cvec out(x.size());
    dsp::cvec block(fft_size);  // the per-call allocation under test
    for (std::size_t pos = 0; pos < x.size(); pos += block_size) {
      for (std::size_t i = 0; i < fft_size; ++i) {
        const auto global =
            static_cast<std::ptrdiff_t>(pos + i) - static_cast<std::ptrdiff_t>(overlap);
        block[i] = (global >= 0 && global < static_cast<std::ptrdiff_t>(x.size()))
                       ? x[static_cast<std::size_t>(global)]
                       : dsp::cf{0.0F, 0.0F};
      }
      fft.forward(dsp::cspan_mut{block});
      for (std::size_t i = 0; i < fft_size; ++i) block[i] *= taps_spectrum[i];
      fft.inverse(dsp::cspan_mut{block});
      const std::size_t n_valid = std::min(block_size, x.size() - pos);
      for (std::size_t i = 0; i < n_valid; ++i) out[pos + i] = block[overlap + i];
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirOverlapSaveSeed)->Arg(64)->Arg(256)->Arg(1025);

void BM_WelchPsd(benchmark::State& state) {
  const dsp::cvec x = random_signal(16384, 6);
  for (auto _ : state) {
    auto psd = dsp::welch_psd(x, 256);
    benchmark::DoNotOptimize(psd.data());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_WelchPsd);

// ------------------------------------------------------------ SIMD kernels
//
// Each vector kernel is benchmarked against its always-built scalar
// reference under the same name prefix, so one JSONL documents the ISA
// speedup on the machine that produced it.

void BM_SimdFirBlock(benchmark::State& state) {
  const auto n_taps = static_cast<std::size_t>(state.range(0));
  const dsp::cvec taps = random_signal(n_taps, 11);
  const dsp::cvec x = random_signal(4096 + n_taps - 1, 12);
  dsp::cvec y(4096);
  for (auto _ : state) {
    dsp::simd::fir_filter_block(taps.data(), n_taps, x.data(), y.data(), y.size());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimdFirBlock)->Arg(16)->Arg(64)->Arg(256);

void BM_ScalarFirBlock(benchmark::State& state) {
  const auto n_taps = static_cast<std::size_t>(state.range(0));
  const dsp::cvec taps = random_signal(n_taps, 11);
  const dsp::cvec x = random_signal(4096 + n_taps - 1, 12);
  dsp::cvec y(4096);
  for (auto _ : state) {
    dsp::simd::scalar::fir_filter_block(taps.data(), n_taps, x.data(), y.data(), y.size());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ScalarFirBlock)->Arg(16)->Arg(64)->Arg(256);

void BM_SimdDespread16(benchmark::State& state) {
  const dsp::cvec pairs = random_signal(16, 13);
  std::vector<float> se(16, 1.0F);
  std::vector<float> so(16, -1.0F);
  const float* cols = phy::ChipTable::instance().columns();
  std::vector<dsp::cf> corr(phy::kNumSymbols);
  for (auto _ : state) {
    dsp::simd::despread_correlate16(pairs.data(), pairs.size(), se.data(), so.data(), cols,
                                    corr.data());
    benchmark::DoNotOptimize(corr.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SimdDespread16);

void BM_ScalarDespread16(benchmark::State& state) {
  const dsp::cvec pairs = random_signal(16, 13);
  std::vector<float> se(16, 1.0F);
  std::vector<float> so(16, -1.0F);
  const float* cols = phy::ChipTable::instance().columns();
  std::vector<dsp::cf> corr(phy::kNumSymbols);
  for (auto _ : state) {
    dsp::simd::scalar::despread_correlate16(pairs.data(), pairs.size(), se.data(), so.data(),
                                            cols, corr.data());
    benchmark::DoNotOptimize(corr.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ScalarDespread16);

void BM_CorrelateSearch(benchmark::State& state) {
  const auto n_ref = static_cast<std::size_t>(state.range(0));
  const dsp::cvec ref = random_signal(n_ref, 14);
  const dsp::cvec x = random_signal(8192 + n_ref, 15);
  for (auto _ : state) {
    const sync::CorrelationPeak peak = sync::correlate_search(x, ref, 8192);
    benchmark::DoNotOptimize(peak.normalized);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_CorrelateSearch)->Arg(64)->Arg(512);

void BM_WelchPsdReal(benchmark::State& state) {
  std::mt19937 rng(16);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::fvec x(16384);
  for (float& v : x) v = dist(rng);
  for (auto _ : state) {
    auto psd = dsp::welch_psd_real(dsp::fspan{x}, 256);
    benchmark::DoNotOptimize(psd.data());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_WelchPsdReal);

void BM_RealFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::RealFft rfft(n);
  std::mt19937 rng(17);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::fvec x(n);
  for (float& v : x) v = dist(rng);
  dsp::cvec out(n / 2 + 1);
  for (auto _ : state) {
    rfft.forward(dsp::fspan{x}, dsp::cspan_mut{out});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RealFft)->Arg(256)->Arg(1024)->Arg(4096);

// ------------------------------------------------------ filter-design cache

/// A tone-jammed slice whose hot-bin mask repeats: the second and later
/// designs inside one iteration replay from the cache (steady state is
/// one miss, then hits). The *Uncached variant disables the cache, so the
/// delta is the full design + taps-spectrum FFT the cache saves per hop.
dsp::cvec tone_jammed_slice(std::size_t n) {
  dsp::cvec x = random_signal(n, 18);
  for (std::size_t i = 0; i < n; ++i) {
    const float ph = 2.0F * 3.14159265F * 0.01F * static_cast<float>(i);
    x[i] += dsp::cf{40.0F * std::cos(ph), 40.0F * std::sin(ph)};
  }
  return x;
}

/// The arg is the bandwidth level: at level 0 the design FFT is small and
/// the (uncacheable) PSD estimate dominates the call, so the pair bounds
/// the cache's best case from below; at level 6 the design runs at 4096
/// taps plus a 16k-point taps-spectrum FFT, the work a hit actually skips.
void BM_FilterDesignCached(benchmark::State& state) {
  const auto level = static_cast<std::size_t>(state.range(0));
  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const core::ControlLogic logic({}, bands);
  const dsp::cvec slice = tone_jammed_slice(16384);
  for (auto _ : state) {
    const core::FilterDecision d = logic.force_excision(slice, level);
    benchmark::DoNotOptimize(d.taps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterDesignCached)->Arg(0)->Arg(6);

void BM_FilterDesignUncached(benchmark::State& state) {
  const auto level = static_cast<std::size_t>(state.range(0));
  const core::BandwidthSet bands = core::BandwidthSet::paper();
  core::ControlLogicConfig cfg;
  cfg.design_cache_capacity = 0;
  const core::ControlLogic logic(cfg, bands);
  const dsp::cvec slice = tone_jammed_slice(16384);
  for (auto _ : state) {
    const core::FilterDecision d = logic.force_excision(slice, level);
    benchmark::DoNotOptimize(d.taps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterDesignUncached)->Arg(0)->Arg(6);

void BM_ExcisionDesign(benchmark::State& state) {
  dsp::fvec psd(256, 1.0F);
  for (std::size_t k = 10; k < 20; ++k) psd[k] = 300.0F;
  for (auto _ : state) {
    auto taps = dsp::design_excision_whitening(psd, 1e-6, 0.6);
    benchmark::DoNotOptimize(taps.data());
  }
}
BENCHMARK(BM_ExcisionDesign);

void BM_Modulate(benchmark::State& state) {
  const auto sps = static_cast<std::size_t>(state.range(0));
  const phy::QpskModulator mod(sps);
  std::vector<float> chips(1024);
  std::mt19937 rng(7);
  for (float& c : chips) c = (rng() & 1U) ? 1.0F : -1.0F;
  for (auto _ : state) {
    auto wave = mod.modulate(chips);
    benchmark::DoNotOptimize(wave.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(1024 * sps));
}
BENCHMARK(BM_Modulate)->Arg(2)->Arg(16)->Arg(128);

void BM_DemodulateAndDespread(benchmark::State& state) {
  const auto sps = static_cast<std::size_t>(state.range(0));
  const phy::QpskModulator mod(sps);
  const phy::QpskDemodulator demod(sps);
  phy::Spreader spreader(0x1234);
  std::vector<std::uint8_t> symbols(32);
  for (std::size_t i = 0; i < symbols.size(); ++i) symbols[i] = i % 16;
  const std::vector<float> chips = spreader.spread(symbols);
  const dsp::cvec wave = mod.modulate(chips);
  for (auto _ : state) {
    phy::Despreader despreader(0x1234);
    const dsp::cvec pairs = demod.demodulate_pairs(wave, chips.size());
    std::uint32_t acc = 0;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      acc += despreader
                 .despread_pairs(dsp::cspan{pairs}.subspan(s * 16, 16))
                 .symbol;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(wave.size()));
}
BENCHMARK(BM_DemodulateAndDespread)->Arg(2)->Arg(16)->Arg(128);

void BM_FullFrameReceive(benchmark::State& state) {
  core::SystemConfig sys;
  sys.pattern = core::HopPattern::make(core::HopPatternType::linear,
                                       core::BandwidthSet::paper());
  const core::BhssTransmitter tx(sys);
  const core::BhssReceiver rx(sys);
  channel::AwgnSource noise(8);
  const std::vector<std::uint8_t> payload(8, 0x5A);
  const core::Transmission t = tx.transmit(payload, 1);
  channel::LinkConfig link;
  link.snr_db = 15.0;
  link.tx_delay = 50;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  for (auto _ : state) {
    auto res = rx.receive(sig, 1, payload.size(), 128);
    benchmark::DoNotOptimize(res.crc_ok);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_FullFrameReceive);

// ----------------------------------------------------- parallel Monte-Carlo

/// End-to-end link simulation through the ParallelLinkRunner; the arg is
/// the thread count. Fixed 16 shards, so every row computes the identical
/// statistics — only the wall time may differ.
void BM_RunLink(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  runtime::ParallelLinkRunner runner({.n_threads = n_threads, .n_shards = 16});
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 16;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  for (auto _ : state) {
    const core::LinkStats s = runner.run(cfg);
    benchmark::DoNotOptimize(s.ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.n_packets));
}
BENCHMARK(BM_RunLink)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ observability

/// Same simulation as BM_RunLink with per-shard telemetry collected, so
/// the enabled-path overhead of the obs layer is the delta to BM_RunLink
/// at the same thread count. (BM_RunLink itself is left untouched: it is
/// the telemetry-disabled regression gate against BENCH_kernels.json.)
void BM_RunLinkTelemetry(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  runtime::ParallelLinkRunner runner({.n_threads = n_threads, .n_shards = 16});
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 16;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  std::vector<obs::ShardTelemetry> telemetry;
  for (auto _ : state) {
    const core::LinkStats s = runner.run(cfg, &telemetry);
    benchmark::DoNotOptimize(s.ok);
    benchmark::DoNotOptimize(telemetry.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.n_packets));
}
BENCHMARK(BM_RunLinkTelemetry)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

/// Same simulation as BM_RunLink with the closed-loop resilience
/// controller enabled (small detector window so the loop actually trips
/// and republishes hop plans), so the adaptation overhead — detector
/// updates, reweighting, pattern rebuilds on epoch change — is the delta
/// to BM_RunLink at the same thread count.
void BM_RunLinkAdapt(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  runtime::ParallelLinkRunner runner({.n_threads = n_threads, .n_shards = 16});
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 16;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  cfg.adapt.enabled = true;
  cfg.adapt.detector.window_packets = 4;
  cfg.adapt.detector.trip_windows = 1;
  cfg.adapt.detector.clear_windows = 1;
  for (auto _ : state) {
    const core::LinkStats s = runner.run(cfg);
    benchmark::DoNotOptimize(s.ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.n_packets));
}
BENCHMARK(BM_RunLinkAdapt)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

/// Raw cost of one counter bump + one histogram observe on the canonical
/// link schema — the per-site price paid inside the hop loop.
void BM_MetricsShardObserve(benchmark::State& state) {
  obs::MetricsShard shard(&obs::link_registry());
  const obs::LinkIds& ids = obs::link_ids();
  double v = 0.0;
  for (auto _ : state) {
    shard.add(ids.hops);
    shard.observe(ids.est_jammer_bw, v);
    v += 0.001;
    if (v > 1.0) v = 0.0;
    benchmark::DoNotOptimize(shard);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsShardObserve);

/// Raw cost of pushing one POD event into the bounded trace ring
/// (steady-state: the ring is full, every push overwrites the oldest).
void BM_TracePush(benchmark::State& state) {
  obs::TraceSink sink(1024);
  obs::TraceEvent ev;
  ev.type = obs::TraceEventType::hop_decision;
  ev.v0 = 0.25;
  ev.v1 = 0.5;
  for (auto _ : state) {
    ev.hop += 1;
    sink.push(ev);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracePush);

/// Raw cost of the resilience controller's per-packet detector hot path:
/// one note_hop (suspicion bump) plus one note_packet (window update) —
/// the price the closed loop adds per delivered packet before any plan
/// republish happens.
void BM_AdaptDetectorNote(benchmark::State& state) {
  adapt::JamDetector det(adapt::JamDetectorConfig{}, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    det.note_hop(i & 7U, (i & 3U) == 0);
    const adapt::WindowVerdict v = det.note_packet((i & 5U) != 0, false);
    benchmark::DoNotOptimize(v.closed);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptDetectorNote);

// --------------------------------------------------- build-flavour guard

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define BHSS_BENCH_SANITIZED 1
#endif
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BHSS_BENCH_SANITIZED 1
#endif

/// "release", "debug", or "sanitizer" — numbers from anything but
/// "release" must never be recorded into BENCH_kernels.json.
const char* build_flavor() {
#if defined(BHSS_BENCH_SANITIZED)
  return "sanitizer";
#elif defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

/// Loudly refuse to let non-release numbers masquerade as perf data. The
/// banner goes to stderr (it must not corrupt --json output on stdout)
/// and the flavour is stamped into the JSON context either way, so
/// scripts/perf_compare.py can reject a mis-built baseline even when the
/// banner scrolled away.
void warn_if_not_release() {
  if (std::strcmp(build_flavor(), "release") == 0) return;
  std::fprintf(stderr,
               "\n"
               "********************************************************************\n"
               "** WARNING: perf_kernels was built as '%s', not 'release'.\n"
               "** These numbers are meaningless for regression gating. Rebuild\n"
               "** with -DCMAKE_BUILD_TYPE=Release (see EXPERIMENTS.md) before\n"
               "** recording BENCH_kernels.json or comparing against it.\n"
               "********************************************************************\n"
               "\n",
               build_flavor());
}

}  // namespace

// Custom main: stamp the build flavour + active ISA into the benchmark
// context, rewrite --json=PATH into the native reporter flags, then hand
// over to google-benchmark.
int main(int argc, char** argv) {
  warn_if_not_release();
  benchmark::AddCustomContext("bhss_build_flavor", build_flavor());
  benchmark::AddCustomContext("bhss_simd_isa", bhss::dsp::simd::active_isa());
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      storage.emplace_back(std::string("--benchmark_out=") + (argv[i] + 7));
      storage.emplace_back("--benchmark_out_format=json");
    } else {
      storage.emplace_back(argv[i]);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
