// Microbenchmarks (google-benchmark) of the hot kernels behind the
// experiments: FFT, direct vs overlap-save FIR filtering, Welch PSD,
// excision design, chip modulation/demodulation, despreading, a whole
// frame reception, and the parallel Monte-Carlo runner at 1/2/4/8
// threads. Not a paper figure — these quantify what the sample-domain
// experiments cost and where the time goes.
//
// The *Seed variants benchmark verbatim copies of the pre-optimisation
// kernels (modulo-branch FIR ring buffer, allocate-per-call overlap-save)
// so the speedup of the allocation-free hot paths stays measurable.
//
// Accepts --json=PATH in addition to the native google-benchmark flags;
// it expands to --benchmark_out=PATH --benchmark_out_format=json so the
// same knob works across all benches (see bench_util.hpp).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "channel/link_channel.hpp"
#include "core/control_logic.hpp"
#include "core/link_simulator.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/psd.hpp"
#include "obs/link_obs.hpp"
#include "phy/modulator.hpp"
#include "phy/spreader.hpp"
#include "runtime/parallel_link_runner.hpp"

namespace {

using namespace bhss;

dsp::cvec random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  dsp::cvec x(n);
  for (dsp::cf& v : x) v = dsp::cf{dist(rng), dist(rng)};
  return x;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Fft fft(n);
  dsp::cvec x = random_signal(n, 1);
  for (auto _ : state) {
    fft.forward(dsp::cspan_mut{x});
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FirDirect(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FirFilter fir{random_signal(taps, 2)};
  const dsp::cvec x = random_signal(4096, 3);
  for (auto _ : state) {
    auto y = fir.process(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirDirect)->Arg(16)->Arg(64)->Arg(256);

void BM_FirOverlapSave(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  dsp::FftConvolver conv{dsp::cspan{random_signal(taps, 4)}};
  const dsp::cvec x = random_signal(4096, 5);
  dsp::cvec y;
  for (auto _ : state) {
    conv.filter(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirOverlapSave)->Arg(64)->Arg(256)->Arg(1025);

// ------------------------------------------------- seed-kernel comparisons

/// Pre-optimisation FirFilter: modulo-branch ring buffer walk per tap.
class SeedFirFilter {
 public:
  explicit SeedFirFilter(dsp::cvec taps) : taps_(std::move(taps)), head_(0) {
    history_.assign(taps_.size(), dsp::cf{0.0F, 0.0F});
  }

  dsp::cf process(dsp::cf in) noexcept {
    history_[head_] = in;
    dsp::cf acc{0.0F, 0.0F};
    std::size_t idx = head_;
    const std::size_t n = taps_.size();
    for (std::size_t k = 0; k < n; ++k) {
      acc += taps_[k] * history_[idx];
      idx = (idx == 0) ? n - 1 : idx - 1;
    }
    head_ = (head_ + 1 == n) ? 0 : head_ + 1;
    return acc;
  }

 private:
  dsp::cvec taps_;
  dsp::cvec history_;
  std::size_t head_;
};

void BM_FirDirectSeed(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  SeedFirFilter fir{random_signal(taps, 2)};
  const dsp::cvec x = random_signal(4096, 3);
  dsp::cvec y(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = fir.process(x[i]);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirDirectSeed)->Arg(16)->Arg(64)->Arg(256);

/// Pre-optimisation FftConvolver: a fresh fft_size block every call.
void BM_FirOverlapSaveSeed(benchmark::State& state) {
  const auto n_taps = static_cast<std::size_t>(state.range(0));
  const dsp::cvec taps = random_signal(n_taps, 4);
  std::size_t fft_size = 2;
  while (fft_size < std::max<std::size_t>(4 * n_taps, 1024)) fft_size <<= 1;
  const std::size_t block_size = fft_size - n_taps + 1;
  const dsp::Fft fft(fft_size);
  const dsp::cvec taps_spectrum = fft.forward_copy(dsp::cspan{taps});
  const dsp::cvec x = random_signal(4096, 5);
  const std::size_t overlap = n_taps - 1;
  for (auto _ : state) {
    dsp::cvec out(x.size());
    dsp::cvec block(fft_size);  // the per-call allocation under test
    for (std::size_t pos = 0; pos < x.size(); pos += block_size) {
      for (std::size_t i = 0; i < fft_size; ++i) {
        const auto global =
            static_cast<std::ptrdiff_t>(pos + i) - static_cast<std::ptrdiff_t>(overlap);
        block[i] = (global >= 0 && global < static_cast<std::ptrdiff_t>(x.size()))
                       ? x[static_cast<std::size_t>(global)]
                       : dsp::cf{0.0F, 0.0F};
      }
      fft.forward(dsp::cspan_mut{block});
      for (std::size_t i = 0; i < fft_size; ++i) block[i] *= taps_spectrum[i];
      fft.inverse(dsp::cspan_mut{block});
      const std::size_t n_valid = std::min(block_size, x.size() - pos);
      for (std::size_t i = 0; i < n_valid; ++i) out[pos + i] = block[overlap + i];
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirOverlapSaveSeed)->Arg(64)->Arg(256)->Arg(1025);

void BM_WelchPsd(benchmark::State& state) {
  const dsp::cvec x = random_signal(16384, 6);
  for (auto _ : state) {
    auto psd = dsp::welch_psd(x, 256);
    benchmark::DoNotOptimize(psd.data());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_WelchPsd);

void BM_ExcisionDesign(benchmark::State& state) {
  dsp::fvec psd(256, 1.0F);
  for (std::size_t k = 10; k < 20; ++k) psd[k] = 300.0F;
  for (auto _ : state) {
    auto taps = dsp::design_excision_whitening(psd, 1e-6, 0.6);
    benchmark::DoNotOptimize(taps.data());
  }
}
BENCHMARK(BM_ExcisionDesign);

void BM_Modulate(benchmark::State& state) {
  const auto sps = static_cast<std::size_t>(state.range(0));
  const phy::QpskModulator mod(sps);
  std::vector<float> chips(1024);
  std::mt19937 rng(7);
  for (float& c : chips) c = (rng() & 1U) ? 1.0F : -1.0F;
  for (auto _ : state) {
    auto wave = mod.modulate(chips);
    benchmark::DoNotOptimize(wave.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(1024 * sps));
}
BENCHMARK(BM_Modulate)->Arg(2)->Arg(16)->Arg(128);

void BM_DemodulateAndDespread(benchmark::State& state) {
  const auto sps = static_cast<std::size_t>(state.range(0));
  const phy::QpskModulator mod(sps);
  const phy::QpskDemodulator demod(sps);
  phy::Spreader spreader(0x1234);
  std::vector<std::uint8_t> symbols(32);
  for (std::size_t i = 0; i < symbols.size(); ++i) symbols[i] = i % 16;
  const std::vector<float> chips = spreader.spread(symbols);
  const dsp::cvec wave = mod.modulate(chips);
  for (auto _ : state) {
    phy::Despreader despreader(0x1234);
    const dsp::cvec pairs = demod.demodulate_pairs(wave, chips.size());
    std::uint32_t acc = 0;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      acc += despreader
                 .despread_pairs(dsp::cspan{pairs}.subspan(s * 16, 16))
                 .symbol;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(wave.size()));
}
BENCHMARK(BM_DemodulateAndDespread)->Arg(2)->Arg(16)->Arg(128);

void BM_FullFrameReceive(benchmark::State& state) {
  core::SystemConfig sys;
  sys.pattern = core::HopPattern::make(core::HopPatternType::linear,
                                       core::BandwidthSet::paper());
  const core::BhssTransmitter tx(sys);
  const core::BhssReceiver rx(sys);
  channel::AwgnSource noise(8);
  const std::vector<std::uint8_t> payload(8, 0x5A);
  const core::Transmission t = tx.transmit(payload, 1);
  channel::LinkConfig link;
  link.snr_db = 15.0;
  link.tx_delay = 50;
  link.tail_pad = 64;
  const dsp::cvec sig = channel::transmit(t.samples, {}, link, noise);
  for (auto _ : state) {
    auto res = rx.receive(sig, 1, payload.size(), 128);
    benchmark::DoNotOptimize(res.crc_ok);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_FullFrameReceive);

// ----------------------------------------------------- parallel Monte-Carlo

/// End-to-end link simulation through the ParallelLinkRunner; the arg is
/// the thread count. Fixed 16 shards, so every row computes the identical
/// statistics — only the wall time may differ.
void BM_RunLink(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  runtime::ParallelLinkRunner runner({.n_threads = n_threads, .n_shards = 16});
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 16;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  for (auto _ : state) {
    const core::LinkStats s = runner.run(cfg);
    benchmark::DoNotOptimize(s.ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.n_packets));
}
BENCHMARK(BM_RunLink)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ observability

/// Same simulation as BM_RunLink with per-shard telemetry collected, so
/// the enabled-path overhead of the obs layer is the delta to BM_RunLink
/// at the same thread count. (BM_RunLink itself is left untouched: it is
/// the telemetry-disabled regression gate against BENCH_kernels.json.)
void BM_RunLinkTelemetry(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  runtime::ParallelLinkRunner runner({.n_threads = n_threads, .n_shards = 16});
  core::SimConfig cfg;
  cfg.payload_len = 4;
  cfg.n_packets = 16;
  cfg.snr_db = 12.0;
  cfg.jnr_db = 20.0;
  cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
  cfg.jammer.bandwidth_frac = 0.1;
  std::vector<obs::ShardTelemetry> telemetry;
  for (auto _ : state) {
    const core::LinkStats s = runner.run(cfg, &telemetry);
    benchmark::DoNotOptimize(s.ok);
    benchmark::DoNotOptimize(telemetry.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.n_packets));
}
BENCHMARK(BM_RunLinkTelemetry)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

/// Raw cost of one counter bump + one histogram observe on the canonical
/// link schema — the per-site price paid inside the hop loop.
void BM_MetricsShardObserve(benchmark::State& state) {
  obs::MetricsShard shard(&obs::link_registry());
  const obs::LinkIds& ids = obs::link_ids();
  double v = 0.0;
  for (auto _ : state) {
    shard.add(ids.hops);
    shard.observe(ids.est_jammer_bw, v);
    v += 0.001;
    if (v > 1.0) v = 0.0;
    benchmark::DoNotOptimize(shard);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsShardObserve);

/// Raw cost of pushing one POD event into the bounded trace ring
/// (steady-state: the ring is full, every push overwrites the oldest).
void BM_TracePush(benchmark::State& state) {
  obs::TraceSink sink(1024);
  obs::TraceEvent ev;
  ev.type = obs::TraceEventType::hop_decision;
  ev.v0 = 0.25;
  ev.v1 = 0.5;
  for (auto _ : state) {
    ev.hop += 1;
    sink.push(ev);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracePush);

}  // namespace

// Custom main: rewrite --json=PATH into the native reporter flags, then
// hand over to google-benchmark.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      storage.emplace_back(std::string("--benchmark_out=") + (argv[i] + 7));
      storage.emplace_back("--benchmark_out_format=json");
    } else {
      storage.emplace_back(argv[i]);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
