// Figure 10: BER of BHSS vs the jammer bandwidth Bj/max(Bp) for different
// signal-to-jamming ratios (-10, -15, -20 dB). Hop range 100, L = 20 dB.
// Expected shape: each SJR curve has a BER maximum at an intermediate
// jammer bandwidth ("a jammer will maximize the bit error rate by
// selecting a jamming bandwidth which is matched to the SJR"), with the
// peak moving as the SJR changes.
//
// The paper does not state the Eb/N0 at which Fig. 10 is evaluated; we use
// 15 dB (the knee of Fig. 9).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  using core::theory::BhssModel;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "fig10");
  bench::header("Figure 10", "BER vs jammer bandwidth for SJR -10/-15/-20 dB (Eb/N0 15 dB)");

  const double ebno = dsp::db_to_linear(15.0);
  const std::vector<double> sjr_db = {-10.0, -15.0, -20.0};

  std::printf("%14s", "Bj/max(Bp)");
  for (double s : sjr_db) std::printf("  SJR=%-4.0fdB   ", s);
  std::printf("\n");

  std::vector<double> peak_bw(sjr_db.size(), 0.0);
  std::vector<double> peak_ber(sjr_db.size(), 0.0);
  try {
    std::size_t step = 0;
    for (double e = -2.0; e <= 0.0 + 1e-9; e += 0.1, ++step) {
      const double bj = std::pow(10.0, e);
      std::printf("%14.4f", bj);
      for (std::size_t i = 0; i < sjr_db.size(); ++i) {
        const bench::Stopwatch watch;
        const BhssModel model = BhssModel::log_uniform(100.0, 7, dsp::db_to_linear(20.0),
                                                       dsp::db_to_linear(-sjr_db[i]));
        const double ber = model.ber_fixed_jammer(bj, ebno);
        if (ber > peak_ber[i]) {
          peak_ber[i] = ber;
          peak_bw[i] = bj;
        }
        std::printf("  %12.3e", ber);
        char point[32];
        std::snprintf(point, sizeof(point), "bw%zu_sjr%zu", step, i);
        const std::uint64_t hash =
            bench::ParamsHash().add(bj).add(sjr_db[i]).add(15.0).value();
        if (!campaign.replay_point(point, hash)) {
          campaign.emit(point, hash,
                        bench::JsonLine()
                            .add("figure", "fig10")
                            .add("bj_over_max_bp", bj)
                            .add("sjr_db", sjr_db[i])
                            .add("ber", ber),
                        watch.seconds());
        }
      }
      std::printf("\n");
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  std::printf("\n# peak (worst-case for the link) jammer bandwidth per SJR:\n");
  for (std::size_t i = 0; i < sjr_db.size(); ++i) {
    std::printf("#   SJR %+.0f dB: Bj/max(Bp) = %.3f, BER = %.3e\n", sjr_db[i], peak_bw[i],
                peak_ber[i]);
  }
  std::printf("# paper: 'the bit error curves for the different SJR values all exhibit\n"
              "# a maximum at different jammer bandwidths'\n");
  return campaign.finish();
}
