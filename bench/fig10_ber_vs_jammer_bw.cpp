// Figure 10: BER of BHSS vs the jammer bandwidth Bj/max(Bp) for different
// signal-to-jamming ratios (-10, -15, -20 dB). Hop range 100, L = 20 dB.
// Expected shape: each SJR curve has a BER maximum at an intermediate
// jammer bandwidth ("a jammer will maximize the bit error rate by
// selecting a jamming bandwidth which is matched to the SJR"), with the
// peak moving as the SJR changes.
//
// The paper does not state the Eb/N0 at which Fig. 10 is evaluated; we use
// 15 dB (the knee of Fig. 9).
//
// Alongside the closed-form sweep, a small sample-domain Monte-Carlo
// validation sweep runs the full link against a fixed-bandwidth jammer at
// a handful of Bj points. It exists so this figure exercises the whole
// receiver chain — and so `--trace`/`--metrics` have per-hop filter
// decisions and counters to capture (see EXPERIMENTS.md).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  using core::theory::BhssModel;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "fig10");
  bench::header("Figure 10", "BER vs jammer bandwidth for SJR -10/-15/-20 dB (Eb/N0 15 dB)");

  const double ebno = dsp::db_to_linear(15.0);
  const std::vector<double> sjr_db = {-10.0, -15.0, -20.0};

  std::printf("%14s", "Bj/max(Bp)");
  for (double s : sjr_db) std::printf("  SJR=%-4.0fdB   ", s);
  std::printf("\n");

  std::vector<double> peak_bw(sjr_db.size(), 0.0);
  std::vector<double> peak_ber(sjr_db.size(), 0.0);
  try {
    std::size_t step = 0;
    for (double e = -2.0; e <= 0.0 + 1e-9; e += 0.1, ++step) {
      const double bj = std::pow(10.0, e);
      std::printf("%14.4f", bj);
      for (std::size_t i = 0; i < sjr_db.size(); ++i) {
        const bench::Stopwatch watch;
        const BhssModel model = BhssModel::log_uniform(100.0, 7, dsp::db_to_linear(20.0),
                                                       dsp::db_to_linear(-sjr_db[i]));
        const double ber = model.ber_fixed_jammer(bj, ebno);
        if (ber > peak_ber[i]) {
          peak_ber[i] = ber;
          peak_bw[i] = bj;
        }
        std::printf("  %12.3e", ber);
        char point[32];
        std::snprintf(point, sizeof(point), "bw%zu_sjr%zu", step, i);
        const std::uint64_t hash =
            bench::ParamsHash().add(bj).add(sjr_db[i]).add(15.0).value();
        if (!campaign.replay_point(point, hash)) {
          campaign.emit(point, hash,
                        bench::JsonLine()
                            .add("figure", "fig10")
                            .add("bj_over_max_bp", bj)
                            .add("sjr_db", sjr_db[i])
                            .add("ber", ber),
                        watch.seconds());
        }
      }
      std::printf("\n");
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  // Sample-domain validation: the full link vs a fixed-bandwidth jammer.
  const std::vector<double> mc_bw = {0.05, 0.1, 0.2, 0.5, 1.0};
  std::printf("\n# Monte-Carlo validation (%zu packets/point, SNR 15 dB, JNR %.0f dB):\n",
              opt.packets, opt.jnr_db);
  std::printf("%14s  %8s  %8s  %8s\n", "Bj/max(Bp)", "ser", "per", "detected");
  try {
    for (std::size_t i = 0; i < mc_bw.size(); ++i) {
      core::SimConfig cfg;
      cfg.system.sync = core::SyncMode::preamble;
      cfg.snr_db = 15.0;
      cfg.jnr_db = opt.jnr_db;
      cfg.n_packets = opt.packets;
      cfg.channel_seed = opt.seed;
      cfg.jammer.kind = core::JammerSpec::Kind::fixed_bandwidth;
      cfg.jammer.bandwidth_frac = mc_bw[i];

      char point[32];
      std::snprintf(point, sizeof(point), "mc_bw%zu", i);
      const bench::Stopwatch watch;
      const core::LinkStats s = campaign.run_point(point, cfg);
      std::printf("%14.2f  %8.4f  %8.4f  %8zu\n", mc_bw[i], s.ser(), s.per(), s.detected);

      bench::JsonLine line;
      line.add("figure", "fig10")
          .add("kind", "monte_carlo")
          .add("bj_over_max_bp", mc_bw[i])
          .add("packets", s.packets)
          .add("ser", s.ser())
          .add("per", s.per())
          .add("detected", s.detected)
          .add("filter_fallback", s.filter_fallback);
      campaign.emit(point, runtime::CampaignRunner::params_hash(cfg, campaign.shards()),
                    std::move(line), watch.seconds());
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  std::printf("\n# peak (worst-case for the link) jammer bandwidth per SJR:\n");
  for (std::size_t i = 0; i < sjr_db.size(); ++i) {
    std::printf("#   SJR %+.0f dB: Bj/max(Bp) = %.3f, BER = %.3e\n", sjr_db[i], peak_bw[i],
                peak_ber[i]);
  }
  std::printf("# paper: 'the bit error curves for the different SJR values all exhibit\n"
              "# a maximum at different jammer bandwidths'\n");
  return campaign.finish();
}
