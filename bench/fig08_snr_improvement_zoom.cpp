// Figure 8: zoom of Figure 7 for bandwidth ratios Bp/Bj in [0.5, 2] —
// the region where the paper argues "significant gains can be achieved by
// BHSS for bandwidth ratios between 0.5 and 2".

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "fig08");
  bench::header("Figure 8", "SNR improvement bound, zoomed to Bp/Bj in [0.5, 2]");
  const double noise_var = 0.01;
  const std::vector<double> rho_dbm = {10.0, 20.0, 30.0};

  std::printf("%8s", "Bp/Bj");
  for (double r : rho_dbm) std::printf("  gamma@%2.0fdBm", r);
  std::printf("\n");

  try {
    std::size_t step = 0;
    for (double ratio = 0.5; ratio <= 2.0 + 1e-9; ratio += 0.05, ++step) {
      std::printf("%8.2f", ratio);
      for (std::size_t p = 0; p < rho_dbm.size(); ++p) {
        const double r = rho_dbm[p];
        const bench::Stopwatch watch;
        const double gamma = core::theory::snr_improvement_bound(
            ratio, dsp::db_to_linear(r), noise_var);
        std::printf("  %11.2f", dsp::linear_to_db(gamma));
        char point[32];
        std::snprintf(point, sizeof(point), "r%zu_rho%zu", step, p);
        const std::uint64_t hash =
            bench::ParamsHash().add(ratio).add(r).add(noise_var).value();
        if (!campaign.replay_point(point, hash)) {
          campaign.emit(point, hash,
                        bench::JsonLine()
                            .add("figure", "fig08")
                            .add("bp_over_bj", ratio)
                            .add("jammer_dbm", r)
                            .add("gamma_db", dsp::linear_to_db(gamma)),
                        watch.seconds());
        }
      }
      std::printf("\n");
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  std::printf("\n# shape check: gamma rises steeply on both sides of Bp/Bj = 1,\n"
              "# with the asymmetry (narrow-band side saturating at the jammer\n"
              "# power) visible already at ratio 2.\n");
  return campaign.finish();
}
