// Closed-loop adaptation scenarios: the resilience controller (src/adapt)
// against the three non-stationary adversaries — duty-cycled bursts, a
// band-sweeping noise jammer, and the distribution-estimating jammer —
// each run twice: with the static configured hop pattern and with the
// closed loop enabled. Reports steady-state PER next to the adaptation
// taxonomy (jam episodes, fallbacks, recoveries, adapted packets) plus
// transient summaries derived from the per-shard TraceSink streams:
// adaptation latency (first window that entered DEGRADED), recovery time
// (first window back to NOMINAL) and the windowed PER split into jammed
// vs clean windows. The full per-window curves go to --trace as
// adapt_window / adapt_transition events — golden traces, bit-identical
// at any thread count and across kill-and-resume.
//
// Expected shape: for every adversary the adaptive rows sit at or below
// the static rows in PER, adaptation latency is bounded by the detector's
// window * trip debounce, and recovery completes (recoveries > 0) after
// the duty-cycle gaps / sweep hand-offs.
//
// NOTE on sharding: each shard runs its own controller over its own
// packets (that is what makes the run bit-identical at any thread
// count), so packets-per-shard must span several detection windows.
// Default: 192 packets / 16 shards = 12 packets = 3 windows per shard.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

namespace {

using namespace bhss;

/// Transient summary distilled from one point's per-shard trace streams.
struct TransientSummary {
  std::size_t first_degraded_window = 0;   ///< min across shards; 0 = never
  std::size_t first_recovered_window = 0;  ///< min across shards; 0 = never
  double per_jammed_windows = 0.0;         ///< mean bad_frac of tripped windows
  double per_clean_windows = 0.0;          ///< mean bad_frac of clean windows
};

TransientSummary summarize_traces(const std::vector<obs::ShardTelemetry>& shards) {
  TransientSummary s;
  double jammed_frac = 0.0;
  double clean_frac = 0.0;
  std::size_t jammed_n = 0;
  std::size_t clean_n = 0;
  for (const obs::ShardTelemetry& shard : shards) {
    for (const obs::TraceEvent& ev : shard.trace.events()) {
      if (ev.type == obs::TraceEventType::adapt_window) {
        if (ev.flag != 0) {
          jammed_frac += ev.v0;
          ++jammed_n;
        } else {
          clean_frac += ev.v0;
          ++clean_n;
        }
      } else if (ev.type == obs::TraceEventType::adapt_transition) {
        const auto window = static_cast<std::size_t>(ev.hop);
        if (ev.flag == 1 &&
            (s.first_degraded_window == 0 || window < s.first_degraded_window)) {
          s.first_degraded_window = window;
        }
        if (ev.flag == 0 &&
            (s.first_recovered_window == 0 || window < s.first_recovered_window)) {
          s.first_recovered_window = window;
        }
      }
    }
  }
  if (jammed_n > 0) s.per_jammed_windows = jammed_frac / static_cast<double>(jammed_n);
  if (clean_n > 0) s.per_clean_windows = clean_frac / static_cast<double>(clean_n);
  return s;
}

bool stats_finite(const core::LinkStats& s) {
  return std::isfinite(s.per()) && std::isfinite(s.ser()) &&
         std::isfinite(s.throughput_bps) && std::isfinite(s.airtime_s);
}

}  // namespace

int main(int argc, char** argv) {
  // 960 packets = 60 per shard = 15 detector windows: enough steady state
  // past the learning transient for the adaptive-vs-static comparison to
  // clear the binomial noise floor. JNR 20 dB is the contested regime —
  // the static link is degraded but alive, so re-weighting has headroom
  // in both directions (30 dB would flatten everything against the rail).
  const bench::Options opt = bench::parse_options(argc, argv, 960, 20.0);
  bench::Campaign campaign(opt, "adapt_scenarios");
  bench::header("Adaptation scenarios",
                "closed-loop hop adaptation vs static patterns under "
                "non-stationary jammers");

  core::SimConfig base;
  base.system.sync = core::SyncMode::preamble;
  base.snr_db = 16.0;
  base.jnr_db = opt.jnr_db;
  base.n_packets = opt.packets;
  base.channel_seed = opt.seed;

  // Fast-acting loop sized for bench-scale runs: 4-packet windows, one
  // jammed window trips, two clean windows clear (a twitchier recovery
  // hands the estimating jammer a stable mode back too quickly).
  adapt::AdaptConfig loop;
  loop.enabled = true;
  loop.detector.window_packets = 4;
  loop.detector.bad_fraction = 0.45;
  loop.detector.min_bad = 2;
  loop.detector.trip_windows = 1;
  loop.detector.clear_windows = 2;
  loop.fallback_windows = 2;
  loop.recovery_windows = 1;

  struct Scenario {
    const char* name;
    core::JammerSpec jammer;
  };
  std::vector<Scenario> scenarios;
  {
    core::JammerSpec duty;
    duty.kind = core::JammerSpec::Kind::duty_cycle;
    duty.bandwidth_frac = 0.35;
    duty.duty_period = 8192;
    duty.duty_fraction = 0.5;
    scenarios.push_back({"duty_cycle", duty});

    core::JammerSpec sweep;
    sweep.kind = core::JammerSpec::Kind::band_sweep;
    sweep.sweep_lo = -0.2;
    sweep.sweep_hi = 0.2;
    sweep.sweep_steps = 8;
    sweep.dwell_samples = 4096;
    sweep.sweep_bw_frac = 0.08;
    scenarios.push_back({"band_sweep", sweep});

    core::JammerSpec est;
    est.kind = core::JammerSpec::Kind::estimating;
    est.estimation_hops = 32;
    scenarios.push_back({"estimating", est});
  }

  // Chain onto the campaign's telemetry sink (if any) to distill the
  // transient summaries from the same per-shard traces the --trace
  // stream publishes; setting a sink also forces telemetry collection,
  // which is what makes the summaries available without --trace.
  std::map<std::string, TransientSummary> summaries;
  auto downstream = campaign.runner().telemetry_sink;
  campaign.runner().telemetry_sink =
      [&summaries, downstream](const std::string& point_id, const core::SimConfig& cfg,
                               const core::LinkStats& merged,
                               const std::vector<obs::ShardTelemetry>& shards) {
        summaries[point_id] = summarize_traces(shards);
        if (downstream) downstream(point_id, cfg, merged, shards);
      };

  std::printf("%-10s  %-8s  %7s  %7s  %12s  %5s  %5s  %5s  %6s  %6s  %6s  %6s\n",
              "scenario", "mode", "per", "ser", "tput_bps", "eps", "fall", "recov",
              "w_jam", "pk_ad", "t_deg", "t_nom");

  bool all_finite = true;
  std::map<std::string, double> static_per;
  std::map<std::string, double> adaptive_per;
  try {
    for (const Scenario& sc : scenarios) {
      for (const bool adaptive : {false, true}) {
        core::SimConfig c = base;
        c.jammer = sc.jammer;
        if (adaptive) c.adapt = loop;

        const char* mode = adaptive ? "adaptive" : "static";
        const std::string point = std::string(sc.name) + "_" + mode;
        const bench::Stopwatch watch;
        const core::LinkStats s = campaign.run_point(point, c);
        all_finite = all_finite && stats_finite(s);
        (adaptive ? adaptive_per : static_per)[sc.name] = s.per();
        const TransientSummary& t = summaries[point];

        std::printf(
            "%-10s  %-8s  %7.4f  %7.4f  %12.1f  %5zu  %5zu  %5zu  %6zu  %6zu  %6zu  %6zu\n",
            sc.name, mode, s.per(), s.ser(), s.throughput_bps, s.adapt_jam_episodes,
            s.adapt_fallbacks, s.adapt_recoveries, s.adapt_windows_jammed,
            s.adapt_packets_adapted, t.first_degraded_window, t.first_recovered_window);

        bench::JsonLine line;
        line.add("bench", "adapt_scenarios")
            .add("scenario", sc.name)
            .add("mode", mode)
            .add("packets", s.packets)
            .add("per", s.per())
            .add("ser", s.ser())
            .add("throughput_bps", s.throughput_bps)
            .add("sync_lost", s.sync_lost)
            .add("adapt_transitions", s.adapt_transitions)
            .add("adapt_jam_episodes", s.adapt_jam_episodes)
            .add("adapt_fallbacks", s.adapt_fallbacks)
            .add("adapt_recoveries", s.adapt_recoveries)
            .add("adapt_windows_jammed", s.adapt_windows_jammed)
            .add("adapt_packets_adapted", s.adapt_packets_adapted)
            .add("first_degraded_window", t.first_degraded_window)
            .add("first_recovered_window", t.first_recovered_window)
            .add("per_jammed_windows", t.per_jammed_windows)
            .add("per_clean_windows", t.per_clean_windows);
        campaign.emit(point, runtime::CampaignRunner::params_hash(c, campaign.shards()),
                      std::move(line), watch.seconds());
      }
    }
  } catch (const runtime::CampaignInterrupted&) {
    std::printf("\n");
    return campaign.abandon_resumable();
  }

  std::printf("#\n# adaptive vs static PER:\n");
  for (const Scenario& sc : scenarios) {
    const double delta = static_per[sc.name] - adaptive_per[sc.name];
    std::printf("#   %-10s  static %.4f  adaptive %.4f  (%+.4f)\n", sc.name,
                static_per[sc.name], adaptive_per[sc.name], -delta);
  }

  if (!all_finite) {
    std::fprintf(stderr, "adapt_scenarios: non-finite statistic in the sweep\n");
    return 1;
  }
  std::printf("# all statistics finite across scenarios\n");
  return campaign.finish();
}
