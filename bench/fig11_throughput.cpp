// Figure 11: normalised throughput vs Eb/N0 for BHSS and rate-equalised
// DSSS/FHSS. N = 500-byte packets, SJR = -20 dB, hop range 100,
// L_BHSS = 20 dB; DSSS/FHSS run at the processing gain that equalises the
// data rate in the same spectrum (paper: 25.4 dB).
// Expected shape: BHSS >> DSSS for small jammer bandwidths; for Bj =
// max(Bp) BHSS saturates around ~0.3 while DSSS reaches 1; against the
// random-hopping jammer BHSS is strictly better at every Eb/N0, the curves
// separated by roughly 12 dB.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "dsp/utils.hpp"

int main(int argc, char** argv) {
  using namespace bhss;
  using core::theory::BhssModel;
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::Campaign campaign(opt, "fig11");
  bench::header("Figure 11",
                "normalised throughput vs Eb/N0 (N = 500 B, SJR -20 dB, range 100)");

  const BhssModel model = BhssModel::log_uniform(100.0, 7, dsp::db_to_linear(20.0),
                                                 dsp::db_to_linear(20.0));
  const std::size_t n_bits = 500 * 8;
  const std::vector<double> jam_bw = {1.0, 0.3, 0.1, 0.03, 0.01};

  std::printf("# rate-equalised DSSS/FHSS processing gain: %.1f dB (paper: 25.4 dB)\n",
              dsp::linear_to_db(model.dsss_equivalent_processing_gain()));

  std::printf("%8s  %10s  %11s", "Eb/N0dB", "DSSS/FHSS", "BHSS:random");
  for (double bj : jam_bw) std::printf("  BHSS:Bj=%-4.2f", bj);
  std::printf("\n");

  try {
    for (double ebno_db = -5.0; ebno_db <= 30.0 + 1e-9; ebno_db += 1.0) {
      const bench::Stopwatch watch;
      const double ebno = dsp::db_to_linear(ebno_db);
      std::printf("%8.1f  %10.3f  %11.3f", ebno_db, model.throughput_dsss(ebno, n_bits),
                  model.throughput_random_jammer(ebno, n_bits));
      bench::JsonLine line;
      line.add("figure", "fig11")
          .add("ebno_db", ebno_db)
          .add("throughput_dsss", model.throughput_dsss(ebno, n_bits))
          .add("throughput_random", model.throughput_random_jammer(ebno, n_bits));
      for (double bj : jam_bw) {
        const double t = model.throughput_fixed_jammer(bj, ebno, n_bits);
        std::printf("  %12.3f", t);
        char key[32];
        std::snprintf(key, sizeof(key), "throughput_bj_%g", bj);
        line.add(key, t);
      }
      std::printf("\n");
      char point[32];
      std::snprintf(point, sizeof(point), "ebno%+.0f", ebno_db);
      const std::uint64_t hash = bench::ParamsHash()
                                     .add(ebno_db)
                                     .add(std::uint64_t{n_bits})
                                     .add("log_uniform_100_7_20_20")
                                     .value();
      if (!campaign.replay_point(point, hash)) {
        campaign.emit(point, hash, std::move(line), watch.seconds());
      }
    }
  } catch (const runtime::CampaignInterrupted&) {
    return campaign.abandon_resumable();
  }

  // The paper's "12 dB separation" between the BHSS-vs-random-jammer curve
  // and the DSSS curve: compare the Eb/N0 each needs for 50 % throughput.
  auto ebno_for_half = [&](auto&& f) {
    for (double db = -5.0; db <= 40.0; db += 0.1) {
      if (f(dsp::db_to_linear(db)) >= 0.5) return db;
    }
    return 40.0;
  };
  const double bhss_half =
      ebno_for_half([&](double e) { return model.throughput_random_jammer(e, n_bits); });
  const double dsss_half =
      ebno_for_half([&](double e) { return model.throughput_dsss(e, n_bits); });
  std::printf("\n# Eb/N0 for 50%% throughput: BHSS(random jammer) %.1f dB, DSSS %s\n",
              bhss_half, dsss_half >= 39.9 ? "never (see below)" : "");
  if (dsss_half >= 39.9) {
    std::printf("# NOTE: under eq. (7) the matched-jammer DSSS output SNR is capped at\n"
                "# L/rho = %.1f dB regardless of Eb/N0, so its 4000-bit packets never\n"
                "# get through and the curve stays at 0 — the paper's Fig. 11 DSSS\n"
                "# curve reaching 1.0 is inconsistent with its own eq. (7); the\n"
                "# BHSS-over-DSSS separation ('roughly 12 dB' in the paper) is\n"
                "# therefore a LOWER bound here (BHSS delivers at %.1f dB, DSSS never).\n",
                dsp::linear_to_db(model.dsss_equivalent_processing_gain() /
                                  model.jammer_power()),
                bhss_half);
  } else {
    std::printf("# separation = %.1f dB (paper: 'roughly 12 dB')\n", dsss_half - bhss_half);
  }
  return campaign.finish();
}
