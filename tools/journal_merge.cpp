// journal-merge: fold N worker checkpoint journals into one canonical
// journal (src/runtime/distributed/journal_merge.hpp).
//
//   journal_merge --out=PATH [--base=PATH] worker.w0 worker.w1 ...
//
// The bench binaries' --supervise mode runs this fold in-process; the
// standalone tool exists for operating on journals by hand — merging the
// output of workers launched across machines, re-merging after replacing
// a corrupt input, or inspecting what a merge WOULD do (--dry-run parses
// and validates everything but writes nothing).
//
// Exit status: 0 on success, 1 on a contract violation (overlapping
// shard ownership, conflicting records, mismatched headers, unreadable
// input), 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/distributed/journal_merge.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out=PATH [--base=PATH] [--dry-run] JOURNAL...\n"
               "  --out=PATH   merged journal destination (atomic publish)\n"
               "  --base=PATH  a previous supervisor journal to fold in; its\n"
               "               records may coincide with worker records\n"
               "  --dry-run    validate the merge, write nothing\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  std::string base;
  bool dry_run = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--base=", 7) == 0) {
      base = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "journal-merge: unknown flag %s\n", argv[i]);
      return usage(argv[0]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty() || (out.empty() && !dry_run)) return usage(argv[0]);

  // A dry run still exercises the full fold (headers, overlap, conflict
  // and torn-tail handling) — it just stages the output under /dev/null's
  // directory-free sibling: we merge to a throwaway path and delete it.
  const std::string target = dry_run ? (out.empty() ? inputs.front() + ".dryrun" : out + ".dryrun")
                                     : out;
  try {
    const bhss::runtime::distributed::MergeReport report =
        bhss::runtime::distributed::merge_journals(inputs, target, base);
    if (dry_run) std::remove(target.c_str());
    std::printf(
        "journal-merge: %zu inputs -> %s\n"
        "  shard records      %zu\n"
        "  telemetry records  %zu\n"
        "  quarantine records %zu\n"
        "  point records      %zu\n"
        "  duplicates folded  %zu\n"
        "  heartbeats dropped %zu\n"
        "  torn tails         %zu\n",
        report.inputs, dry_run ? "(dry run)" : target.c_str(), report.shard_records,
        report.obs_records, report.quarantine_records, report.point_records,
        report.duplicates_folded, report.heartbeats_dropped, report.torn_tails);
    return 0;
  } catch (const bhss::runtime::distributed::JournalMergeError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
