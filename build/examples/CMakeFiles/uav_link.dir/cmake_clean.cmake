file(REMOVE_RECURSE
  "CMakeFiles/uav_link.dir/uav_link.cpp.o"
  "CMakeFiles/uav_link.dir/uav_link.cpp.o.d"
  "uav_link"
  "uav_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uav_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
