# Empty compiler generated dependencies file for uav_link.
# This may be replaced when dependencies are built.
