
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spectrum_monitor.cpp" "examples/CMakeFiles/spectrum_monitor.dir/spectrum_monitor.cpp.o" "gcc" "examples/CMakeFiles/spectrum_monitor.dir/spectrum_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/bhss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bhss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/bhss_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bhss_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/jammer/CMakeFiles/bhss_jammer.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/bhss_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/bhss_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
