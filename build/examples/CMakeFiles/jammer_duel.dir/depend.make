# Empty dependencies file for jammer_duel.
# This may be replaced when dependencies are built.
