file(REMOVE_RECURSE
  "CMakeFiles/jammer_duel.dir/jammer_duel.cpp.o"
  "CMakeFiles/jammer_duel.dir/jammer_duel.cpp.o.d"
  "jammer_duel"
  "jammer_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jammer_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
