# Empty compiler generated dependencies file for table1_hop_distributions.
# This may be replaced when dependencies are built.
