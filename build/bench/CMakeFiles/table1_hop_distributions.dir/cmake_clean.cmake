file(REMOVE_RECURSE
  "CMakeFiles/table1_hop_distributions.dir/table1_hop_distributions.cpp.o"
  "CMakeFiles/table1_hop_distributions.dir/table1_hop_distributions.cpp.o.d"
  "table1_hop_distributions"
  "table1_hop_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hop_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
