# Empty compiler generated dependencies file for fig08_snr_improvement_zoom.
# This may be replaced when dependencies are built.
