file(REMOVE_RECURSE
  "CMakeFiles/fig08_snr_improvement_zoom.dir/fig08_snr_improvement_zoom.cpp.o"
  "CMakeFiles/fig08_snr_improvement_zoom.dir/fig08_snr_improvement_zoom.cpp.o.d"
  "fig08_snr_improvement_zoom"
  "fig08_snr_improvement_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_snr_improvement_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
