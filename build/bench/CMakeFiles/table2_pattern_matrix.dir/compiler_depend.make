# Empty compiler generated dependencies file for table2_pattern_matrix.
# This may be replaced when dependencies are built.
