file(REMOVE_RECURSE
  "CMakeFiles/fig14_power_advantage_hopping.dir/fig14_power_advantage_hopping.cpp.o"
  "CMakeFiles/fig14_power_advantage_hopping.dir/fig14_power_advantage_hopping.cpp.o.d"
  "fig14_power_advantage_hopping"
  "fig14_power_advantage_hopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_power_advantage_hopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
