# Empty compiler generated dependencies file for fig14_power_advantage_hopping.
# This may be replaced when dependencies are built.
