file(REMOVE_RECURSE
  "CMakeFiles/fig07_snr_improvement_bound.dir/fig07_snr_improvement_bound.cpp.o"
  "CMakeFiles/fig07_snr_improvement_bound.dir/fig07_snr_improvement_bound.cpp.o.d"
  "fig07_snr_improvement_bound"
  "fig07_snr_improvement_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_snr_improvement_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
