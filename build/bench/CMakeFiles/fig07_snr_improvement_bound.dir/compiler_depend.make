# Empty compiler generated dependencies file for fig07_snr_improvement_bound.
# This may be replaced when dependencies are built.
