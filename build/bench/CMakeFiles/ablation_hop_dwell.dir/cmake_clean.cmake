file(REMOVE_RECURSE
  "CMakeFiles/ablation_hop_dwell.dir/ablation_hop_dwell.cpp.o"
  "CMakeFiles/ablation_hop_dwell.dir/ablation_hop_dwell.cpp.o.d"
  "ablation_hop_dwell"
  "ablation_hop_dwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hop_dwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
