# Empty dependencies file for ablation_hop_dwell.
# This may be replaced when dependencies are built.
