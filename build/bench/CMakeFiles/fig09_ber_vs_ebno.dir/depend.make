# Empty dependencies file for fig09_ber_vs_ebno.
# This may be replaced when dependencies are built.
