file(REMOVE_RECURSE
  "CMakeFiles/fig09_ber_vs_ebno.dir/fig09_ber_vs_ebno.cpp.o"
  "CMakeFiles/fig09_ber_vs_ebno.dir/fig09_ber_vs_ebno.cpp.o.d"
  "fig09_ber_vs_ebno"
  "fig09_ber_vs_ebno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ber_vs_ebno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
