file(REMOVE_RECURSE
  "CMakeFiles/fig10_ber_vs_jammer_bw.dir/fig10_ber_vs_jammer_bw.cpp.o"
  "CMakeFiles/fig10_ber_vs_jammer_bw.dir/fig10_ber_vs_jammer_bw.cpp.o.d"
  "fig10_ber_vs_jammer_bw"
  "fig10_ber_vs_jammer_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ber_vs_jammer_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
