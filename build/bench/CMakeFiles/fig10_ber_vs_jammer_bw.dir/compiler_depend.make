# Empty compiler generated dependencies file for fig10_ber_vs_jammer_bw.
# This may be replaced when dependencies are built.
