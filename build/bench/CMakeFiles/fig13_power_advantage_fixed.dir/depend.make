# Empty dependencies file for fig13_power_advantage_fixed.
# This may be replaced when dependencies are built.
