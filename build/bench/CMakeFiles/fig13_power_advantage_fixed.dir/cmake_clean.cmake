file(REMOVE_RECURSE
  "CMakeFiles/fig13_power_advantage_fixed.dir/fig13_power_advantage_fixed.cpp.o"
  "CMakeFiles/fig13_power_advantage_fixed.dir/fig13_power_advantage_fixed.cpp.o.d"
  "fig13_power_advantage_fixed"
  "fig13_power_advantage_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_power_advantage_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
