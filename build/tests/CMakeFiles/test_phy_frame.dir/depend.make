# Empty dependencies file for test_phy_frame.
# This may be replaced when dependencies are built.
