file(REMOVE_RECURSE
  "CMakeFiles/test_phy_frame.dir/test_phy_frame.cpp.o"
  "CMakeFiles/test_phy_frame.dir/test_phy_frame.cpp.o.d"
  "test_phy_frame"
  "test_phy_frame.pdb"
  "test_phy_frame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
