# Empty compiler generated dependencies file for test_sync_gardner.
# This may be replaced when dependencies are built.
