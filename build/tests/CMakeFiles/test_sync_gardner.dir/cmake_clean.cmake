file(REMOVE_RECURSE
  "CMakeFiles/test_sync_gardner.dir/test_sync_gardner.cpp.o"
  "CMakeFiles/test_sync_gardner.dir/test_sync_gardner.cpp.o.d"
  "test_sync_gardner"
  "test_sync_gardner.pdb"
  "test_sync_gardner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_gardner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
