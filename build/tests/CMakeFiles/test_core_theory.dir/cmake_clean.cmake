file(REMOVE_RECURSE
  "CMakeFiles/test_core_theory.dir/test_core_theory.cpp.o"
  "CMakeFiles/test_core_theory.dir/test_core_theory.cpp.o.d"
  "test_core_theory"
  "test_core_theory.pdb"
  "test_core_theory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
