# Empty dependencies file for test_dsp_pulse_autocorr.
# This may be replaced when dependencies are built.
