file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_pulse_autocorr.dir/test_dsp_pulse_autocorr.cpp.o"
  "CMakeFiles/test_dsp_pulse_autocorr.dir/test_dsp_pulse_autocorr.cpp.o.d"
  "test_dsp_pulse_autocorr"
  "test_dsp_pulse_autocorr.pdb"
  "test_dsp_pulse_autocorr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_pulse_autocorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
