# Empty dependencies file for test_phy_despread_pairs.
# This may be replaced when dependencies are built.
