file(REMOVE_RECURSE
  "CMakeFiles/test_phy_despread_pairs.dir/test_phy_despread_pairs.cpp.o"
  "CMakeFiles/test_phy_despread_pairs.dir/test_phy_despread_pairs.cpp.o.d"
  "test_phy_despread_pairs"
  "test_phy_despread_pairs.pdb"
  "test_phy_despread_pairs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_despread_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
