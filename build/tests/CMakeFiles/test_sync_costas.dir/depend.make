# Empty dependencies file for test_sync_costas.
# This may be replaced when dependencies are built.
