file(REMOVE_RECURSE
  "CMakeFiles/test_sync_costas.dir/test_sync_costas.cpp.o"
  "CMakeFiles/test_sync_costas.dir/test_sync_costas.cpp.o.d"
  "test_sync_costas"
  "test_sync_costas.pdb"
  "test_sync_costas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_costas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
