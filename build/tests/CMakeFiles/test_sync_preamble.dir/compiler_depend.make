# Empty compiler generated dependencies file for test_sync_preamble.
# This may be replaced when dependencies are built.
