file(REMOVE_RECURSE
  "CMakeFiles/test_sync_preamble.dir/test_sync_preamble.cpp.o"
  "CMakeFiles/test_sync_preamble.dir/test_sync_preamble.cpp.o.d"
  "test_sync_preamble"
  "test_sync_preamble.pdb"
  "test_sync_preamble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
