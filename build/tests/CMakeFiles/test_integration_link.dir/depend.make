# Empty dependencies file for test_integration_link.
# This may be replaced when dependencies are built.
