file(REMOVE_RECURSE
  "CMakeFiles/test_integration_link.dir/test_integration_link.cpp.o"
  "CMakeFiles/test_integration_link.dir/test_integration_link.cpp.o.d"
  "test_integration_link"
  "test_integration_link.pdb"
  "test_integration_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
