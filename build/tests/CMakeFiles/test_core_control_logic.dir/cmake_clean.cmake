file(REMOVE_RECURSE
  "CMakeFiles/test_core_control_logic.dir/test_core_control_logic.cpp.o"
  "CMakeFiles/test_core_control_logic.dir/test_core_control_logic.cpp.o.d"
  "test_core_control_logic"
  "test_core_control_logic.pdb"
  "test_core_control_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_control_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
