# Empty dependencies file for test_core_control_logic.
# This may be replaced when dependencies are built.
