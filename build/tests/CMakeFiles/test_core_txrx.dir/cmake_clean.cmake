file(REMOVE_RECURSE
  "CMakeFiles/test_core_txrx.dir/test_core_txrx.cpp.o"
  "CMakeFiles/test_core_txrx.dir/test_core_txrx.cpp.o.d"
  "test_core_txrx"
  "test_core_txrx.pdb"
  "test_core_txrx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_txrx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
