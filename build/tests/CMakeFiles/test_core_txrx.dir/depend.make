# Empty dependencies file for test_core_txrx.
# This may be replaced when dependencies are built.
