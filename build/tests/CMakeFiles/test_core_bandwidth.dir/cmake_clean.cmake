file(REMOVE_RECURSE
  "CMakeFiles/test_core_bandwidth.dir/test_core_bandwidth.cpp.o"
  "CMakeFiles/test_core_bandwidth.dir/test_core_bandwidth.cpp.o.d"
  "test_core_bandwidth"
  "test_core_bandwidth.pdb"
  "test_core_bandwidth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
