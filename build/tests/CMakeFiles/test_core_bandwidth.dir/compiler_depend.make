# Empty compiler generated dependencies file for test_core_bandwidth.
# This may be replaced when dependencies are built.
