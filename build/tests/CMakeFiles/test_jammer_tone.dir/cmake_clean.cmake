file(REMOVE_RECURSE
  "CMakeFiles/test_jammer_tone.dir/test_jammer_tone.cpp.o"
  "CMakeFiles/test_jammer_tone.dir/test_jammer_tone.cpp.o.d"
  "test_jammer_tone"
  "test_jammer_tone.pdb"
  "test_jammer_tone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jammer_tone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
