# Empty dependencies file for test_jammer_tone.
# This may be replaced when dependencies are built.
