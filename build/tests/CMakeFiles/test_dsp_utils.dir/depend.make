# Empty dependencies file for test_dsp_utils.
# This may be replaced when dependencies are built.
