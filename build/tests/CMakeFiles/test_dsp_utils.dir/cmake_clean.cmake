file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_utils.dir/test_dsp_utils.cpp.o"
  "CMakeFiles/test_dsp_utils.dir/test_dsp_utils.cpp.o.d"
  "test_dsp_utils"
  "test_dsp_utils.pdb"
  "test_dsp_utils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
