# Empty dependencies file for test_phy_chip_table.
# This may be replaced when dependencies are built.
