file(REMOVE_RECURSE
  "CMakeFiles/test_phy_chip_table.dir/test_phy_chip_table.cpp.o"
  "CMakeFiles/test_phy_chip_table.dir/test_phy_chip_table.cpp.o.d"
  "test_phy_chip_table"
  "test_phy_chip_table.pdb"
  "test_phy_chip_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_chip_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
