file(REMOVE_RECURSE
  "CMakeFiles/test_sync_correlate.dir/test_sync_correlate.cpp.o"
  "CMakeFiles/test_sync_correlate.dir/test_sync_correlate.cpp.o.d"
  "test_sync_correlate"
  "test_sync_correlate.pdb"
  "test_sync_correlate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
