# Empty dependencies file for test_sync_correlate.
# This may be replaced when dependencies are built.
