# Empty compiler generated dependencies file for test_phy_spreader.
# This may be replaced when dependencies are built.
