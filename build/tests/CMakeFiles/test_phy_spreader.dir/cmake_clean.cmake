file(REMOVE_RECURSE
  "CMakeFiles/test_phy_spreader.dir/test_phy_spreader.cpp.o"
  "CMakeFiles/test_phy_spreader.dir/test_phy_spreader.cpp.o.d"
  "test_phy_spreader"
  "test_phy_spreader.pdb"
  "test_phy_spreader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_spreader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
