# Empty dependencies file for test_phy_crc.
# This may be replaced when dependencies are built.
