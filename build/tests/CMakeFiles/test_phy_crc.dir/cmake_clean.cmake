file(REMOVE_RECURSE
  "CMakeFiles/test_phy_crc.dir/test_phy_crc.cpp.o"
  "CMakeFiles/test_phy_crc.dir/test_phy_crc.cpp.o.d"
  "test_phy_crc"
  "test_phy_crc.pdb"
  "test_phy_crc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
