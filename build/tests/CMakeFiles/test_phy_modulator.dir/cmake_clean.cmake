file(REMOVE_RECURSE
  "CMakeFiles/test_phy_modulator.dir/test_phy_modulator.cpp.o"
  "CMakeFiles/test_phy_modulator.dir/test_phy_modulator.cpp.o.d"
  "test_phy_modulator"
  "test_phy_modulator.pdb"
  "test_phy_modulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_modulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
