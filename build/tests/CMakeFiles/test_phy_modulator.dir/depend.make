# Empty dependencies file for test_phy_modulator.
# This may be replaced when dependencies are built.
