file(REMOVE_RECURSE
  "CMakeFiles/test_phy_pn.dir/test_phy_pn.cpp.o"
  "CMakeFiles/test_phy_pn.dir/test_phy_pn.cpp.o.d"
  "test_phy_pn"
  "test_phy_pn.pdb"
  "test_phy_pn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_pn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
