# Empty dependencies file for test_phy_pn.
# This may be replaced when dependencies are built.
