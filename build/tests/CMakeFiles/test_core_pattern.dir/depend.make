# Empty dependencies file for test_core_pattern.
# This may be replaced when dependencies are built.
