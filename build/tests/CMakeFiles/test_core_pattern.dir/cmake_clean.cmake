file(REMOVE_RECURSE
  "CMakeFiles/test_core_pattern.dir/test_core_pattern.cpp.o"
  "CMakeFiles/test_core_pattern.dir/test_core_pattern.cpp.o.d"
  "test_core_pattern"
  "test_core_pattern.pdb"
  "test_core_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
