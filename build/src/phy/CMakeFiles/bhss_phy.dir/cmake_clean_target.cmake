file(REMOVE_RECURSE
  "libbhss_phy.a"
)
