file(REMOVE_RECURSE
  "CMakeFiles/bhss_phy.dir/chip_table.cpp.o"
  "CMakeFiles/bhss_phy.dir/chip_table.cpp.o.d"
  "CMakeFiles/bhss_phy.dir/crc16.cpp.o"
  "CMakeFiles/bhss_phy.dir/crc16.cpp.o.d"
  "CMakeFiles/bhss_phy.dir/frame.cpp.o"
  "CMakeFiles/bhss_phy.dir/frame.cpp.o.d"
  "CMakeFiles/bhss_phy.dir/modulator.cpp.o"
  "CMakeFiles/bhss_phy.dir/modulator.cpp.o.d"
  "CMakeFiles/bhss_phy.dir/pn.cpp.o"
  "CMakeFiles/bhss_phy.dir/pn.cpp.o.d"
  "CMakeFiles/bhss_phy.dir/spreader.cpp.o"
  "CMakeFiles/bhss_phy.dir/spreader.cpp.o.d"
  "libbhss_phy.a"
  "libbhss_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
