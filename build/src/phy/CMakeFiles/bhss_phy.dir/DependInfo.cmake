
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/chip_table.cpp" "src/phy/CMakeFiles/bhss_phy.dir/chip_table.cpp.o" "gcc" "src/phy/CMakeFiles/bhss_phy.dir/chip_table.cpp.o.d"
  "/root/repo/src/phy/crc16.cpp" "src/phy/CMakeFiles/bhss_phy.dir/crc16.cpp.o" "gcc" "src/phy/CMakeFiles/bhss_phy.dir/crc16.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/bhss_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/bhss_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/modulator.cpp" "src/phy/CMakeFiles/bhss_phy.dir/modulator.cpp.o" "gcc" "src/phy/CMakeFiles/bhss_phy.dir/modulator.cpp.o.d"
  "/root/repo/src/phy/pn.cpp" "src/phy/CMakeFiles/bhss_phy.dir/pn.cpp.o" "gcc" "src/phy/CMakeFiles/bhss_phy.dir/pn.cpp.o.d"
  "/root/repo/src/phy/spreader.cpp" "src/phy/CMakeFiles/bhss_phy.dir/spreader.cpp.o" "gcc" "src/phy/CMakeFiles/bhss_phy.dir/spreader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/bhss_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
