# Empty compiler generated dependencies file for bhss_phy.
# This may be replaced when dependencies are built.
