
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandwidth_set.cpp" "src/core/CMakeFiles/bhss_core.dir/bandwidth_set.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/bandwidth_set.cpp.o.d"
  "/root/repo/src/core/control_logic.cpp" "src/core/CMakeFiles/bhss_core.dir/control_logic.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/control_logic.cpp.o.d"
  "/root/repo/src/core/hop_pattern.cpp" "src/core/CMakeFiles/bhss_core.dir/hop_pattern.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/hop_pattern.cpp.o.d"
  "/root/repo/src/core/hop_schedule.cpp" "src/core/CMakeFiles/bhss_core.dir/hop_schedule.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/hop_schedule.cpp.o.d"
  "/root/repo/src/core/link_simulator.cpp" "src/core/CMakeFiles/bhss_core.dir/link_simulator.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/link_simulator.cpp.o.d"
  "/root/repo/src/core/pattern_optimizer.cpp" "src/core/CMakeFiles/bhss_core.dir/pattern_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/pattern_optimizer.cpp.o.d"
  "/root/repo/src/core/receiver.cpp" "src/core/CMakeFiles/bhss_core.dir/receiver.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/receiver.cpp.o.d"
  "/root/repo/src/core/shared_random.cpp" "src/core/CMakeFiles/bhss_core.dir/shared_random.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/shared_random.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/bhss_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/theory.cpp.o.d"
  "/root/repo/src/core/transmitter.cpp" "src/core/CMakeFiles/bhss_core.dir/transmitter.cpp.o" "gcc" "src/core/CMakeFiles/bhss_core.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/bhss_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bhss_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/bhss_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/bhss_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/jammer/CMakeFiles/bhss_jammer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
