file(REMOVE_RECURSE
  "libbhss_core.a"
)
