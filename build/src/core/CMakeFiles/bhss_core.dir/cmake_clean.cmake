file(REMOVE_RECURSE
  "CMakeFiles/bhss_core.dir/bandwidth_set.cpp.o"
  "CMakeFiles/bhss_core.dir/bandwidth_set.cpp.o.d"
  "CMakeFiles/bhss_core.dir/control_logic.cpp.o"
  "CMakeFiles/bhss_core.dir/control_logic.cpp.o.d"
  "CMakeFiles/bhss_core.dir/hop_pattern.cpp.o"
  "CMakeFiles/bhss_core.dir/hop_pattern.cpp.o.d"
  "CMakeFiles/bhss_core.dir/hop_schedule.cpp.o"
  "CMakeFiles/bhss_core.dir/hop_schedule.cpp.o.d"
  "CMakeFiles/bhss_core.dir/link_simulator.cpp.o"
  "CMakeFiles/bhss_core.dir/link_simulator.cpp.o.d"
  "CMakeFiles/bhss_core.dir/pattern_optimizer.cpp.o"
  "CMakeFiles/bhss_core.dir/pattern_optimizer.cpp.o.d"
  "CMakeFiles/bhss_core.dir/receiver.cpp.o"
  "CMakeFiles/bhss_core.dir/receiver.cpp.o.d"
  "CMakeFiles/bhss_core.dir/shared_random.cpp.o"
  "CMakeFiles/bhss_core.dir/shared_random.cpp.o.d"
  "CMakeFiles/bhss_core.dir/theory.cpp.o"
  "CMakeFiles/bhss_core.dir/theory.cpp.o.d"
  "CMakeFiles/bhss_core.dir/transmitter.cpp.o"
  "CMakeFiles/bhss_core.dir/transmitter.cpp.o.d"
  "libbhss_core.a"
  "libbhss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
