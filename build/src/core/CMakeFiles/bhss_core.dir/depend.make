# Empty dependencies file for bhss_core.
# This may be replaced when dependencies are built.
