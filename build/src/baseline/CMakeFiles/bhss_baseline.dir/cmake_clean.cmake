file(REMOVE_RECURSE
  "CMakeFiles/bhss_baseline.dir/analytical.cpp.o"
  "CMakeFiles/bhss_baseline.dir/analytical.cpp.o.d"
  "CMakeFiles/bhss_baseline.dir/dsss_baseline.cpp.o"
  "CMakeFiles/bhss_baseline.dir/dsss_baseline.cpp.o.d"
  "CMakeFiles/bhss_baseline.dir/fhss.cpp.o"
  "CMakeFiles/bhss_baseline.dir/fhss.cpp.o.d"
  "libbhss_baseline.a"
  "libbhss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
