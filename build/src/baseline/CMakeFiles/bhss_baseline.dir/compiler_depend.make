# Empty compiler generated dependencies file for bhss_baseline.
# This may be replaced when dependencies are built.
