file(REMOVE_RECURSE
  "libbhss_baseline.a"
)
