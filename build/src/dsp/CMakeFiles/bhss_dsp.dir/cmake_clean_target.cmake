file(REMOVE_RECURSE
  "libbhss_dsp.a"
)
