
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/autocorr.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/autocorr.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/autocorr.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/psd.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/psd.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/psd.cpp.o.d"
  "/root/repo/src/dsp/pulse.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/pulse.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/pulse.cpp.o.d"
  "/root/repo/src/dsp/utils.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/utils.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/utils.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/bhss_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/bhss_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
