file(REMOVE_RECURSE
  "CMakeFiles/bhss_dsp.dir/autocorr.cpp.o"
  "CMakeFiles/bhss_dsp.dir/autocorr.cpp.o.d"
  "CMakeFiles/bhss_dsp.dir/fft.cpp.o"
  "CMakeFiles/bhss_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/bhss_dsp.dir/fir.cpp.o"
  "CMakeFiles/bhss_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/bhss_dsp.dir/psd.cpp.o"
  "CMakeFiles/bhss_dsp.dir/psd.cpp.o.d"
  "CMakeFiles/bhss_dsp.dir/pulse.cpp.o"
  "CMakeFiles/bhss_dsp.dir/pulse.cpp.o.d"
  "CMakeFiles/bhss_dsp.dir/utils.cpp.o"
  "CMakeFiles/bhss_dsp.dir/utils.cpp.o.d"
  "CMakeFiles/bhss_dsp.dir/window.cpp.o"
  "CMakeFiles/bhss_dsp.dir/window.cpp.o.d"
  "libbhss_dsp.a"
  "libbhss_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
