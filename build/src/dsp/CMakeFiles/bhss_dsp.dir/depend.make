# Empty dependencies file for bhss_dsp.
# This may be replaced when dependencies are built.
