file(REMOVE_RECURSE
  "libbhss_sync.a"
)
