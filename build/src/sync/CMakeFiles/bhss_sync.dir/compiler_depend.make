# Empty compiler generated dependencies file for bhss_sync.
# This may be replaced when dependencies are built.
