file(REMOVE_RECURSE
  "CMakeFiles/bhss_sync.dir/correlate.cpp.o"
  "CMakeFiles/bhss_sync.dir/correlate.cpp.o.d"
  "CMakeFiles/bhss_sync.dir/costas.cpp.o"
  "CMakeFiles/bhss_sync.dir/costas.cpp.o.d"
  "CMakeFiles/bhss_sync.dir/gardner.cpp.o"
  "CMakeFiles/bhss_sync.dir/gardner.cpp.o.d"
  "CMakeFiles/bhss_sync.dir/preamble_sync.cpp.o"
  "CMakeFiles/bhss_sync.dir/preamble_sync.cpp.o.d"
  "libbhss_sync.a"
  "libbhss_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
