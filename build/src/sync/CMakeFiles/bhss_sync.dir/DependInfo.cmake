
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/correlate.cpp" "src/sync/CMakeFiles/bhss_sync.dir/correlate.cpp.o" "gcc" "src/sync/CMakeFiles/bhss_sync.dir/correlate.cpp.o.d"
  "/root/repo/src/sync/costas.cpp" "src/sync/CMakeFiles/bhss_sync.dir/costas.cpp.o" "gcc" "src/sync/CMakeFiles/bhss_sync.dir/costas.cpp.o.d"
  "/root/repo/src/sync/gardner.cpp" "src/sync/CMakeFiles/bhss_sync.dir/gardner.cpp.o" "gcc" "src/sync/CMakeFiles/bhss_sync.dir/gardner.cpp.o.d"
  "/root/repo/src/sync/preamble_sync.cpp" "src/sync/CMakeFiles/bhss_sync.dir/preamble_sync.cpp.o" "gcc" "src/sync/CMakeFiles/bhss_sync.dir/preamble_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/bhss_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bhss_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
