file(REMOVE_RECURSE
  "libbhss_channel.a"
)
