# Empty dependencies file for bhss_channel.
# This may be replaced when dependencies are built.
