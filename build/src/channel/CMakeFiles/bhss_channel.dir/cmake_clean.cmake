file(REMOVE_RECURSE
  "CMakeFiles/bhss_channel.dir/awgn.cpp.o"
  "CMakeFiles/bhss_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/bhss_channel.dir/impairments.cpp.o"
  "CMakeFiles/bhss_channel.dir/impairments.cpp.o.d"
  "CMakeFiles/bhss_channel.dir/link_channel.cpp.o"
  "CMakeFiles/bhss_channel.dir/link_channel.cpp.o.d"
  "libbhss_channel.a"
  "libbhss_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
