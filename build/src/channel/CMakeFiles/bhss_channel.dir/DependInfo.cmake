
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/awgn.cpp" "src/channel/CMakeFiles/bhss_channel.dir/awgn.cpp.o" "gcc" "src/channel/CMakeFiles/bhss_channel.dir/awgn.cpp.o.d"
  "/root/repo/src/channel/impairments.cpp" "src/channel/CMakeFiles/bhss_channel.dir/impairments.cpp.o" "gcc" "src/channel/CMakeFiles/bhss_channel.dir/impairments.cpp.o.d"
  "/root/repo/src/channel/link_channel.cpp" "src/channel/CMakeFiles/bhss_channel.dir/link_channel.cpp.o" "gcc" "src/channel/CMakeFiles/bhss_channel.dir/link_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/bhss_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
