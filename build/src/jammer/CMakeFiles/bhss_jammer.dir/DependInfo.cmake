
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jammer/hopping_jammer.cpp" "src/jammer/CMakeFiles/bhss_jammer.dir/hopping_jammer.cpp.o" "gcc" "src/jammer/CMakeFiles/bhss_jammer.dir/hopping_jammer.cpp.o.d"
  "/root/repo/src/jammer/noise_jammer.cpp" "src/jammer/CMakeFiles/bhss_jammer.dir/noise_jammer.cpp.o" "gcc" "src/jammer/CMakeFiles/bhss_jammer.dir/noise_jammer.cpp.o.d"
  "/root/repo/src/jammer/reactive_jammer.cpp" "src/jammer/CMakeFiles/bhss_jammer.dir/reactive_jammer.cpp.o" "gcc" "src/jammer/CMakeFiles/bhss_jammer.dir/reactive_jammer.cpp.o.d"
  "/root/repo/src/jammer/tone_jammer.cpp" "src/jammer/CMakeFiles/bhss_jammer.dir/tone_jammer.cpp.o" "gcc" "src/jammer/CMakeFiles/bhss_jammer.dir/tone_jammer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/bhss_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/bhss_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
