file(REMOVE_RECURSE
  "CMakeFiles/bhss_jammer.dir/hopping_jammer.cpp.o"
  "CMakeFiles/bhss_jammer.dir/hopping_jammer.cpp.o.d"
  "CMakeFiles/bhss_jammer.dir/noise_jammer.cpp.o"
  "CMakeFiles/bhss_jammer.dir/noise_jammer.cpp.o.d"
  "CMakeFiles/bhss_jammer.dir/reactive_jammer.cpp.o"
  "CMakeFiles/bhss_jammer.dir/reactive_jammer.cpp.o.d"
  "CMakeFiles/bhss_jammer.dir/tone_jammer.cpp.o"
  "CMakeFiles/bhss_jammer.dir/tone_jammer.cpp.o.d"
  "libbhss_jammer.a"
  "libbhss_jammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhss_jammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
