file(REMOVE_RECURSE
  "libbhss_jammer.a"
)
