# Empty dependencies file for bhss_jammer.
# This may be replaced when dependencies are built.
