// Jammer duel — the strategy game of §6.4: the transmitter picks a hop
// pattern, the jammer picks a bandwidth strategy, and we play out every
// combination on the real sample-domain link at a fixed power point.
//
// Reproduces the qualitative structure of Fig. 14 / Table 2 as a single
// scoreboard: fixed jamming is punished by an adaptive transmitter,
// exponential-vs-exponential is the jammer's best cell, and the parabolic
// transmitter pattern has the most even row (best worst case).

#include <cstdio>
#include <string>
#include <vector>

#include "core/link_simulator.hpp"

int main() {
  using namespace bhss;

  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const double snr_db = 12.0;
  const double jnr_db = 30.0;
  const std::size_t n_packets = 30;

  struct JammerStrategy {
    std::string name;
    core::JammerSpec spec;
  };
  std::vector<JammerStrategy> jammers;
  {
    core::JammerSpec fixed_wide;
    fixed_wide.kind = core::JammerSpec::Kind::fixed_bandwidth;
    fixed_wide.bandwidth_frac = bands.bandwidth_frac(0);
    jammers.push_back({"fixed 10 MHz", fixed_wide});

    core::JammerSpec fixed_narrow = fixed_wide;
    fixed_narrow.bandwidth_frac = bands.bandwidth_frac(5);
    jammers.push_back({"fixed 0.31 MHz", fixed_narrow});

    for (auto type : {core::HopPatternType::linear, core::HopPatternType::exponential,
                      core::HopPatternType::parabolic}) {
      core::JammerSpec hop;
      hop.kind = core::JammerSpec::Kind::hopping;
      hop.hop_probs = core::HopPattern::make(type, bands).probabilities();
      hop.dwell_samples = 8192;
      jammers.push_back({"hopping " + to_string(type), hop});
    }
  }

  std::printf("Delivered frames out of %zu (SNR %.0f dB, JNR %.0f dB); one bandwidth\n"
              "draw per frame, higher is better for the transmitter:\n\n",
              n_packets, snr_db, jnr_db);
  std::printf("%-22s", "tx pattern \\ jammer");
  for (const auto& j : jammers) std::printf("  %14s", j.name.c_str());
  std::printf("\n");

  for (auto type : {core::HopPatternType::linear, core::HopPatternType::exponential,
                    core::HopPatternType::parabolic}) {
    std::printf("%-22s", to_string(type).c_str());
    for (const auto& j : jammers) {
      core::SimConfig cfg;
      cfg.system.pattern = core::HopPattern::make(type, bands);
      cfg.system.symbols_per_hop = 1024;  // one bandwidth per frame
      cfg.payload_len = 8;
      cfg.n_packets = n_packets;
      cfg.snr_db = snr_db;
      cfg.jnr_db = jnr_db;
      cfg.jammer = j.spec;
      const core::LinkStats s = core::run_link(cfg);
      std::printf("  %14zu", s.ok);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nReading the board: a fixed narrow jammer loses badly to every hopping\n"
              "pattern (the excision filter digs it out whenever the bandwidths\n"
              "differ), and the exponential pattern, which spends most of its time\n"
              "at the widest bandwidths, exploits it best. The fixed wide jammer\n"
              "column shows the flip side at this power point: wide-band jamming is\n"
              "only filterable by the narrow hops' low-pass margin (see\n"
              "EXPERIMENTS.md on the wide-band side). Among hopping jammers the\n"
              "pattern matchup decides the rest (Table 2 of the paper).\n");
  return 0;
}
