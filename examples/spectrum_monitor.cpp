// Spectrum monitor — a look inside the receiver's control logic (§4.2).
//
// Renders ASCII spectra of what the receiver sees for three scenarios
// (clean signal / narrow-band jammer / wide-band jammer), prints the
// control logic's decision, and shows the frequency response of the
// filter it designed.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "channel/awgn.hpp"
#include "core/control_logic.hpp"
#include "core/transmitter.hpp"
#include "dsp/fir.hpp"
#include "dsp/psd.hpp"
#include "dsp/utils.hpp"
#include "jammer/noise_jammer.hpp"
#include "jammer/tone_jammer.hpp"

namespace {

using namespace bhss;

/// Draw a dB-scaled ASCII plot of a DC-centred spectrum.
void draw(const dsp::fvec& centred, const char* title) {
  constexpr std::size_t kCols = 64;
  constexpr int kRows = 8;
  const std::size_t bins_per_col = centred.size() / kCols;

  std::vector<double> col_db(kCols);
  double max_db = -300.0;
  for (std::size_t c = 0; c < kCols; ++c) {
    double acc = 0.0;
    for (std::size_t b = 0; b < bins_per_col; ++b) {
      acc += static_cast<double>(centred[c * bins_per_col + b]);
    }
    col_db[c] = dsp::linear_to_db(acc / static_cast<double>(bins_per_col) + 1e-30);
    max_db = std::max(max_db, col_db[c]);
  }

  std::printf("%s (top = %.0f dB, 5 dB/row)\n", title, max_db);
  for (int r = 0; r < kRows; ++r) {
    const double level = max_db - 5.0 * r;
    std::printf("  |");
    for (std::size_t c = 0; c < kCols; ++c) {
      std::putchar(col_db[c] >= level ? '#' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("  +%s+\n   -Rs/2%*s+Rs/2\n", std::string(kCols, '-').c_str(),
              static_cast<int>(kCols) - 9, "");
}

dsp::cvec received_with(const dsp::cvec& jam_wave, double jnr_db, dsp::cvec rx) {
  const auto g = static_cast<float>(std::sqrt(dsp::db_to_linear(jnr_db)));
  for (std::size_t i = 0; i < rx.size() && i < jam_wave.size(); ++i) rx[i] += g * jam_wave[i];
  channel::AwgnSource noise(3);
  noise.add_to(dsp::cspan_mut{rx}, 1.0);
  return rx;
}

void inspect(const char* name, const dsp::cvec& rx, const core::BandwidthSet& bands,
             std::size_t level) {
  std::printf("\n=== %s ===\n", name);
  draw(dsp::fft_shift(dsp::welch_psd(rx, 512)), "received spectrum");

  const core::ControlLogic logic({}, bands);
  const core::FilterDecision d = logic.decide(rx, level);
  const char* kind = d.kind == core::FilterDecision::Kind::none ? "no filter"
                     : d.kind == core::FilterDecision::Kind::lowpass ? "low-pass filter"
                                                                     : "excision filter";
  std::printf("control logic: %s (in-band peak/floor %.1f dB, out-of-band/in-band %.1f dB,\n"
              "               estimated jammer occupancy %.3f of Rs)\n",
              kind, d.inband_peak_over_median_db, d.oob_to_inband_level_db,
              d.est_jammer_bw_frac);

  if (d.kind != core::FilterDecision::Kind::none) {
    draw(dsp::fft_shift(dsp::power_response(d.taps, 512)), "designed filter |H(f)|^2");
  }
}

void scenario(const char* name, double jam_bw, double jnr_db) {
  const core::BandwidthSet bands = core::BandwidthSet::paper();
  const std::size_t level = 2;  // 2.5 MHz signal

  core::SystemConfig sys;
  sys.pattern = core::HopPattern::fixed(bands, level);
  sys.hopping = false;
  sys.fixed_bw_index = level;
  const core::BhssTransmitter tx(sys);
  const std::vector<std::uint8_t> payload(24, 0x5A);
  dsp::cvec rx = tx.transmit(payload, 1).samples;
  dsp::scale_to_power(dsp::cspan_mut{rx}, dsp::db_to_linear(15.0));

  if (jnr_db > -100.0) {
    jammer::NoiseJammer jam(jam_bw, 11);
    const dsp::cvec j = jam.generate(rx.size());
    const auto g = static_cast<float>(std::sqrt(dsp::db_to_linear(jnr_db)));
    for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += g * j[i];
  }
  channel::AwgnSource noise(3);
  noise.add_to(dsp::cspan_mut{rx}, 1.0);

  std::printf("\n=== %s ===\n", name);
  draw(dsp::fft_shift(dsp::welch_psd(rx, 512)), "received spectrum");

  const core::ControlLogic logic({}, bands);
  const core::FilterDecision d = logic.decide(rx, level);
  const char* kind = d.kind == core::FilterDecision::Kind::none ? "no filter"
                     : d.kind == core::FilterDecision::Kind::lowpass ? "low-pass filter"
                                                                     : "excision filter";
  std::printf("control logic: %s (in-band peak/floor %.1f dB, out-of-band/in-band %.1f dB,\n"
              "               estimated jammer occupancy %.3f of Rs)\n",
              kind, d.inband_peak_over_median_db, d.oob_to_inband_level_db,
              d.est_jammer_bw_frac);

  if (d.kind != core::FilterDecision::Kind::none) {
    draw(dsp::fft_shift(dsp::power_response(d.taps, 512)),
         "designed filter |H(f)|^2");
  }
}

}  // namespace

int main() {
  std::printf("Receiver control logic demo: 2.5 MHz BHSS signal at 20 MS/s, SNR 15 dB\n");
  scenario("clean channel (no jammer)", 1.0, -300.0);
  scenario("narrow-band jammer: 312 kHz at JNR 25 dB", 1.0 / 64.0, 25.0);
  scenario("wide-band jammer: 10 MHz at JNR 25 dB", 0.5, 25.0);

  // CW tone — the classic excision target ([3]-[7] in the paper).
  {
    const core::BandwidthSet bands = core::BandwidthSet::paper();
    const std::size_t level = 2;
    core::SystemConfig sys;
    sys.pattern = core::HopPattern::fixed(bands, level);
    sys.hopping = false;
    sys.fixed_bw_index = level;
    const core::BhssTransmitter tx(sys);
    const std::vector<std::uint8_t> payload(24, 0x5A);
    dsp::cvec rx = tx.transmit(payload, 1).samples;
    dsp::scale_to_power(dsp::cspan_mut{rx}, dsp::db_to_linear(15.0));
    jammer::ToneJammer tone(0.02, 13);
    const dsp::cvec jam_wave = tone.generate(rx.size());
    inspect("CW tone jammer at +400 kHz, JNR 25 dB",
            received_with(jam_wave, 25.0, std::move(rx)), bands, level);
  }
  return 0;
}
