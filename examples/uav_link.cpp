// UAV control link under a reactive jammer — the paper's motivating
// scenario ("This communication could be for example between a ground
// station and a UAV", §2).
//
// A ground station streams command frames to a UAV while a reactive
// jammer (§2, realised per [12]) senses the channel and matches its
// jamming bandwidth to whatever it observes, with a reaction time of
// ~0.8 ms ("a couple of symbols" at the narrow bandwidths). The paper's
// §3 requirement is that the bandwidth must change faster than the jammer
// can react; we fly the same mission three ways:
//   (a) fixed-bandwidth DSSS — the jammer parks on the link, steady-state
//       matched jamming, nothing gets through;
//   (b) BHSS with short frames, new bandwidth every frame — every frame
//       completes before the matched jamming arrives;
//   (c) BHSS with long frames — the dwell exceeds the reaction time, the
//       jammer catches the frame mid-air.

#include <cstdio>

#include "baseline/dsss_baseline.hpp"
#include "core/link_simulator.hpp"

int main() {
  using namespace bhss;

  // 1.25-10 MHz hop set: even the slowest frame fits inside the jammer's
  // reaction window when frames are short.
  const core::BandwidthSet bands(20e6, {2, 4, 8, 16});
  const std::size_t n_frames = 40;
  const double snr_db = 18.0;
  const double jnr_db = 30.0;
  const std::size_t reaction_delay = 16384;  // ~0.8 ms at 20 MS/s

  std::printf("UAV control link: %zu command frames, SNR %.0f dB, reactive jammer at\n"
              "JNR %.0f dB with a %.0f us reaction time\n\n",
              n_frames, snr_db, jnr_db,
              static_cast<double>(reaction_delay) / bands.sample_rate_hz() * 1e6);

  auto fly_mission = [&](const char* name, core::SystemConfig system,
                         core::JammerSpec jammer, std::size_t payload_len) {
    core::SimConfig cfg;
    cfg.system = std::move(system);
    cfg.payload_len = payload_len;
    cfg.n_packets = n_frames;
    cfg.snr_db = snr_db;
    cfg.jnr_db = jnr_db;
    cfg.jammer = jammer;
    const core::LinkStats s = core::run_link(cfg);
    std::printf("%-26s delivered %2zu/%zu frames (PER %4.0f%%), SER %5.1f%%\n", name, s.ok,
                s.packets, 100.0 * s.per(), 100.0 * s.ser());
    return s;
  };

  core::JammerSpec reactive;
  reactive.kind = core::JammerSpec::Kind::reactive;
  reactive.reaction_delay = reaction_delay;

  // Against a never-hopping link the reactive jammer's steady state is a
  // permanently matched jammer.
  core::JammerSpec parked;
  parked.kind = core::JammerSpec::Kind::fixed_bandwidth;
  parked.bandwidth_frac = bands.bandwidth_frac(1);

  core::SystemConfig fixed = baseline::dsss_config(bands, 1);  // 5 MHz, never hops
  fly_mission("(a) fixed 5 MHz DSSS", fixed, parked, 4);

  core::SystemConfig hopper;
  hopper.pattern = core::HopPattern::make(core::HopPatternType::linear, bands);
  hopper.symbols_per_hop = 1024;  // one bandwidth per frame
  const core::LinkStats short_frames =
      fly_mission("(b) BHSS, short frames", hopper, reactive, 4);

  fly_mission("(c) BHSS, long frames", hopper, reactive, 96);

  std::printf("\n(b) wins because every 4-byte frame is over before the jammer's\n"
              "matched waveform arrives (paper §3: hop faster than the reaction\n"
              "time). (c)'s narrow-bandwidth frames dwell past the reaction time\n"
              "and get caught, like the fixed link in (a).\n");
  return short_frames.ok > short_frames.packets / 2 ? 0 : 1;
}
