// Quickstart: send a message over a jammed channel with BHSS.
//
// Demonstrates the minimal public API:
//   1. build a shared SystemConfig (the pre-shared secret of the link),
//   2. transmit a payload with BhssTransmitter,
//   3. run it through the AWGN channel simulator with a narrow-band
//      jammer 25 dB above the noise floor,
//   4. receive with BhssReceiver — once with the adaptive interference
//      filters of the paper, once with filtering disabled.
//
// Expected output: the filtered receiver recovers the message; the
// unfiltered one does not.

#include <cstdio>
#include <string>

#include "channel/link_channel.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "jammer/noise_jammer.hpp"

int main() {
  using namespace bhss;

  // 1. Shared link configuration: four bandwidths between 1.25 and 10 MHz
  //    at 20 MS/s, hopped per the parabolic pattern. Transmitter and
  //    receiver must agree on every field (incl. the seed).
  core::SystemConfig config;
  config.seed = 0xC0FFEE;
  config.pattern = core::HopPattern::make(core::HopPatternType::parabolic,
                                          core::BandwidthSet(20e6, {2, 4, 8, 16}));

  const core::BhssTransmitter tx(config);
  const core::BhssReceiver rx(config);

  // 2. Transmit a payload.
  const std::string message = "hello BHSS";
  const std::vector<std::uint8_t> payload(message.begin(), message.end());
  const core::Transmission t = tx.transmit(payload, /*frame_counter=*/0);
  std::printf("transmitted %zu bytes as %zu symbols over %zu hops (%zu samples)\n",
              payload.size(), t.symbols.size(), t.schedule.segments.size(),
              t.samples.size());

  // 3. Channel: 15 dB SNR, plus a 156 kHz noise jammer 25 dB above the
  //    noise floor (i.e. 10 dB above the signal) — narrow against every
  //    hop bandwidth, so the excision filter can always dig it out.
  channel::LinkConfig link;
  link.snr_db = 15.0;
  link.jnr_db = 25.0;
  link.tx_delay = 100;
  link.tail_pad = 64;
  link.phase = 1.1F;
  link.cfo = 5e-5F;

  jammer::NoiseJammer jammer(1.0 / 128.0, /*seed=*/42, /*num_taps=*/1025);
  const dsp::cvec jam = jammer.generate(link.tx_delay + t.samples.size() + link.tail_pad);
  channel::AwgnSource noise(7);
  const dsp::cvec received = channel::transmit(t.samples, jam, link, noise);

  // 4a. Adaptive receiver (the paper's §4.2 control logic).
  const core::RxResult good = rx.receive(received, 0, payload.size(), 256);
  std::printf("adaptive filters : detected=%d crc_ok=%d payload=\"%s\"\n",
              good.frame_detected, good.crc_ok,
              std::string(good.payload.begin(), good.payload.end()).c_str());
  for (std::size_t h = 0; h < good.hops.size(); ++h) {
    const char* kind = good.hops[h].filter == core::FilterDecision::Kind::none ? "none"
                       : good.hops[h].filter == core::FilterDecision::Kind::lowpass
                           ? "low-pass"
                           : "excision";
    std::printf("  hop %zu at %5.3f MHz -> %s\n", h,
                config.pattern.bands().bandwidth_hz(good.hops[h].bw_index) / 1e6, kind);
  }

  // 4b. Same samples, filters off: the jammer wins.
  core::SystemConfig raw_cfg = config;
  raw_cfg.filter_policy = core::FilterPolicy::off;
  const core::BhssReceiver raw_rx(raw_cfg);
  const core::RxResult bad = raw_rx.receive(received, 0, payload.size(), 256);
  std::printf("filters disabled : detected=%d crc_ok=%d\n", bad.frame_detected, bad.crc_ok);

  return good.crc_ok && !bad.crc_ok ? 0 : 1;
}
